"""Chip configuration, preset and scaling tests."""

import dataclasses

import pytest

from repro.arch import (
    GEFORCE_GTX_480,
    GPU_PRESETS,
    HD_RADEON_7970,
    QUADRO_FX_5600,
    QUADRO_FX_5800,
    get_gpu,
    get_scaled_gpu,
    list_gpus,
    list_scaled_gpus,
    scaled_config,
)
from repro.arch.config import GpuConfig, LatencyModel
from repro.errors import ConfigError


class TestPresets:
    def test_four_chips(self):
        assert len(GPU_PRESETS) == 4
        assert [g.name for g in list_gpus()] == [
            "HD Radeon 7970", "Quadro FX 5600", "Quadro FX 5800",
            "GeForce GTX 480",
        ]

    def test_vendor_isa_pairing(self):
        for config in list_gpus():
            if config.vendor == "nvidia":
                assert config.isa == "sass"
                assert config.warp_size == 32
            else:
                assert config.isa == "si"
                assert config.warp_size == 64

    def test_datasheet_sizes(self):
        # Register file: 8K/16K/32K 32-bit regs per SM; 64K words per CU.
        assert QUADRO_FX_5600.registers_per_core == 8192
        assert QUADRO_FX_5800.registers_per_core == 16384
        assert GEFORCE_GTX_480.registers_per_core == 32768
        assert HD_RADEON_7970.registers_per_core == 65536
        # Shared/LDS: 16K/16K/48K/64K bytes.
        assert QUADRO_FX_5600.local_memory_bytes == 16 * 1024
        assert GEFORCE_GTX_480.local_memory_bytes == 48 * 1024
        assert HD_RADEON_7970.local_memory_bytes == 64 * 1024

    def test_core_counts(self):
        assert QUADRO_FX_5600.num_cores == 16
        assert QUADRO_FX_5800.num_cores == 30
        assert GEFORCE_GTX_480.num_cores == 15
        assert HD_RADEON_7970.num_cores == 32

    def test_aliases(self):
        assert get_gpu("gtx480") is GEFORCE_GTX_480
        assert get_gpu("fermi") is GEFORCE_GTX_480
        assert get_gpu("g80") is QUADRO_FX_5600
        assert get_gpu("GT200") is QUADRO_FX_5800
        assert get_gpu("hd7970") is HD_RADEON_7970
        assert get_gpu("Tahiti") is HD_RADEON_7970
        assert get_gpu("GeForce GTX 480") is GEFORCE_GTX_480

    def test_unknown_gpu(self):
        with pytest.raises(ConfigError, match="unknown GPU"):
            get_gpu("voodoo2")


class TestStructureBits:
    def test_register_file_bits(self):
        # GTX 480: 15 SMs x 32768 regs x 32 bits.
        assert GEFORCE_GTX_480.register_file_bits == 15 * 32768 * 32

    def test_local_memory_bits(self):
        assert QUADRO_FX_5600.local_memory_bits == 16 * 16 * 1024 * 8

    def test_structure_bits_lookup(self):
        config = GEFORCE_GTX_480
        assert config.structure_bits("register_file") == config.register_file_bits
        assert config.structure_bits("local_memory") == config.local_memory_bits
        with pytest.raises(ConfigError):
            config.structure_bits("cache")

    def test_describe_mentions_name(self):
        assert "GTX 480" in GEFORCE_GTX_480.describe()


class TestValidation:
    def _base_kwargs(self):
        return dict(
            name="x", vendor="nvidia", isa="sass", microarchitecture="m",
            num_cores=1, warp_size=32, registers_per_core=1024,
            local_memory_bytes=1024, max_threads_per_core=256,
            max_blocks_per_core=4, max_warps_per_core=8,
            shader_clock_hz=1e9,
        )

    def test_bad_vendor(self):
        kwargs = self._base_kwargs()
        kwargs["vendor"] = "intel"
        with pytest.raises(ConfigError):
            GpuConfig(**kwargs)

    def test_bad_warp_size(self):
        kwargs = self._base_kwargs()
        kwargs["warp_size"] = 16
        with pytest.raises(ConfigError):
            GpuConfig(**kwargs)

    def test_nonpositive_cores(self):
        kwargs = self._base_kwargs()
        kwargs["num_cores"] = 0
        with pytest.raises(ConfigError):
            GpuConfig(**kwargs)

    def test_threads_below_warp(self):
        kwargs = self._base_kwargs()
        kwargs["max_threads_per_core"] = 16
        with pytest.raises(ConfigError):
            GpuConfig(**kwargs)

    def test_negative_latency(self):
        with pytest.raises(ConfigError):
            LatencyModel(alu=-1)

    def test_zero_issue_cycles(self):
        with pytest.raises(ConfigError):
            LatencyModel(issue_cycles=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GEFORCE_GTX_480.num_cores = 1


class TestScaling:
    def test_scaled_core_counts(self):
        scaled = {g.name: g for g in list_scaled_gpus()}
        assert scaled["HD Radeon 7970 (scaled)"].num_cores == 8
        assert scaled["Quadro FX 5600 (scaled)"].num_cores == 4
        assert scaled["Quadro FX 5800 (scaled)"].num_cores == 8
        assert scaled["GeForce GTX 480 (scaled)"].num_cores == 4

    def test_per_core_quantities_unchanged(self):
        for full, scaled in zip(list_gpus(), list_scaled_gpus()):
            assert scaled.registers_per_core == full.registers_per_core
            assert scaled.local_memory_bytes == full.local_memory_bytes
            assert scaled.warp_size == full.warp_size
            assert scaled.shader_clock_hz == full.shader_clock_hz
            assert scaled.latency == full.latency

    def test_get_scaled_by_alias(self):
        assert get_scaled_gpu("gtx480").num_cores == 4
        assert get_scaled_gpu("GeForce GTX 480 (scaled)").num_cores == 4

    def test_scaled_config_minimum(self):
        tiny = scaled_config(get_gpu("gtx480"), core_divisor=100)
        assert tiny.num_cores == 2
