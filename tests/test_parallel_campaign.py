"""Parallel FI campaigns must be bit-identical to serial ones."""

import numpy as np
import pytest

from repro.engine import clear_memory_cache
from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.reliability.campaign import run_cell, run_matrix
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.outcomes import Outcome
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.sim.faults import REGISTER_FILE
from tests.conftest import MINI_AMD, MINI_NVIDIA


class TestParallelCampaign:
    def test_workers_do_not_change_results(self):
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        golden = run_golden(config, workload)
        serial = run_fi_campaign(config, workload, golden, samples=40,
                                 seed=21, keep_results=True, workers=1)
        parallel = run_fi_campaign(config, workload, golden, samples=40,
                                   seed=21, keep_results=True, workers=3)
        for structure in serial.estimates:
            a, b = serial.estimates[structure], parallel.estimates[structure]
            assert (a.masked, a.sdc, a.due, a.pruned) == \
                   (b.masked, b.sdc, b.due, b.pruned)
        for left, right in zip(serial.results, parallel.results):
            assert left.plan == right.plan
            assert left.outcome == right.outcome
            assert left.corrupted_words == right.corrupted_words

    def test_parallel_requires_registry_workload(self):
        from repro.kernels.workload import Workload
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(MINI_NVIDIA, workload)
        clone = Workload(
            name="custom", programs=workload.programs,
            buffers=workload.buffers, make_launches=workload.make_launches,
            output_buffers=workload.output_buffers,
            reference=workload.reference,
        )
        with pytest.raises(ConfigError, match="registry workload"):
            run_fi_campaign(MINI_NVIDIA, clone, golden, samples=30,
                            seed=0, workers=2)


class TestCellParallelMatrix:
    """Cell-level parallelism (the engine) vs the serial matrix."""

    GPUS = [MINI_NVIDIA, MINI_AMD]
    WORKLOADS = ["histogram", "vectoradd"]

    @staticmethod
    def _comparable(cell):
        row = cell.row()
        row.pop("golden_time_s")
        row.pop("fi_time_s")
        return row

    def test_matrix_workers_do_not_change_results(self):
        kwargs = dict(gpus=self.GPUS, workloads=self.WORKLOADS,
                      scale="tiny", samples=24, seed=5,
                      structures=STRUCTURES)
        clear_memory_cache()
        serial = run_matrix(workers=1, **kwargs)
        clear_memory_cache()
        parallel = run_matrix(workers=3, shard_size=5, **kwargs)
        assert [self._comparable(c) for c in serial] == \
               [self._comparable(c) for c in parallel]
        for left, right in zip(serial, parallel):
            assert left.epf.epf == right.epf.epf
            assert left.epf.fit_by_structure == right.epf.fit_by_structure
            for structure in STRUCTURES:
                a, b = left.fi[structure], right.fi[structure]
                assert (a.masked, a.sdc, a.due, a.pruned, a.resimulated) == \
                       (b.masked, b.sdc, b.due, b.pruned, b.resimulated)

    def test_matrix_matches_legacy_serial_cells(self):
        """The engine reproduces run_cell bit for bit, cell by cell."""
        clear_memory_cache()
        cells = run_matrix(gpus=[MINI_NVIDIA], workloads=self.WORKLOADS,
                           scale="tiny", samples=24, seed=5,
                           structures=STRUCTURES)
        for cell in cells:
            legacy = run_cell(MINI_NVIDIA, cell.workload, scale="tiny",
                              samples=24, seed=5, structures=STRUCTURES)
            assert self._comparable(cell) == self._comparable(legacy)
            assert cell.ace == legacy.ace
            assert cell.occupancy == legacy.occupancy
            assert cell.epf.epf == legacy.epf.epf

    def test_shard_size_does_not_change_results(self):
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=["histogram"],
                      scale="tiny", samples=30, seed=7,
                      structures=STRUCTURES)
        clear_memory_cache()
        coarse = run_matrix(shard_size=64, **kwargs)
        fine = run_matrix(shard_size=1, workers=2, **kwargs)
        assert [self._comparable(c) for c in coarse] == \
               [self._comparable(c) for c in fine]


class TestSdcSeverity:
    def test_corrupted_word_counts_recorded(self):
        config = MINI_NVIDIA
        workload = get_workload("scan", "tiny")
        golden = run_golden(config, workload)
        output = run_fi_campaign(config, workload, golden, samples=120,
                                 seed=8, keep_results=True)
        sdcs = [r for r in output.results if r.outcome is Outcome.SDC]
        if not sdcs:
            pytest.skip("no SDC drawn at this seed")
        assert all(r.corrupted_words >= 1 for r in sdcs)
        non_sdc = [r for r in output.results if r.outcome is not Outcome.SDC]
        assert all(r.corrupted_words == 0 for r in non_sdc)

    def test_count_corrupted_words_helper(self):
        from repro.reliability.outcomes import count_corrupted_words
        golden = {"a": np.array([1, 2, 3], dtype=np.uint32)}
        faulty = {"a": np.array([1, 9, 9], dtype=np.uint32)}
        assert count_corrupted_words(golden, faulty) == 2
        assert count_corrupted_words(golden, golden) == 0
