"""Parallel FI campaigns must be bit-identical to serial ones."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.outcomes import Outcome
from repro.sim.faults import REGISTER_FILE
from tests.conftest import MINI_NVIDIA


class TestParallelCampaign:
    def test_workers_do_not_change_results(self):
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        golden = run_golden(config, workload)
        serial = run_fi_campaign(config, workload, golden, samples=40,
                                 seed=21, keep_results=True, workers=1)
        parallel = run_fi_campaign(config, workload, golden, samples=40,
                                   seed=21, keep_results=True, workers=3)
        for structure in serial.estimates:
            a, b = serial.estimates[structure], parallel.estimates[structure]
            assert (a.masked, a.sdc, a.due, a.pruned) == \
                   (b.masked, b.sdc, b.due, b.pruned)
        for left, right in zip(serial.results, parallel.results):
            assert left.plan == right.plan
            assert left.outcome == right.outcome
            assert left.corrupted_words == right.corrupted_words

    def test_parallel_requires_registry_workload(self):
        from repro.kernels.workload import Workload
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(MINI_NVIDIA, workload)
        clone = Workload(
            name="custom", programs=workload.programs,
            buffers=workload.buffers, make_launches=workload.make_launches,
            output_buffers=workload.output_buffers,
            reference=workload.reference,
        )
        with pytest.raises(ConfigError, match="registry workload"):
            run_fi_campaign(MINI_NVIDIA, clone, golden, samples=30,
                            seed=0, workers=2)


class TestSdcSeverity:
    def test_corrupted_word_counts_recorded(self):
        config = MINI_NVIDIA
        workload = get_workload("scan", "tiny")
        golden = run_golden(config, workload)
        output = run_fi_campaign(config, workload, golden, samples=120,
                                 seed=8, keep_results=True)
        sdcs = [r for r in output.results if r.outcome is Outcome.SDC]
        if not sdcs:
            pytest.skip("no SDC drawn at this seed")
        assert all(r.corrupted_words >= 1 for r in sdcs)
        non_sdc = [r for r in output.results if r.outcome is not Outcome.SDC]
        assert all(r.corrupted_words == 0 for r in non_sdc)

    def test_count_corrupted_words_helper(self):
        from repro.reliability.outcomes import count_corrupted_words
        golden = {"a": np.array([1, 2, 3], dtype=np.uint32)}
        faulty = {"a": np.array([1, 9, 9], dtype=np.uint32)}
        assert count_corrupted_words(golden, faulty) == 2
        assert count_corrupted_words(golden, golden) == 0
