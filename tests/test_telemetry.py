"""Engine telemetry: sinks, hub fan-out, and observability-only-ness.

The load-bearing contract: telemetry never changes results. Stores
produced with it on and off must be bit-identical (modulo wall-time
fields), no job fingerprint may include the telemetry setting, and a
failing sink must be dropped, never propagated into the scheduler.
"""

import json

import pytest

from repro.engine.matrix import cell_fingerprints, run_campaign
from repro.engine.scheduler import clear_memory_cache
from repro.errors import ConfigError
from repro.spec import CampaignSpec
from repro.spec.sweep import run_sweep
from repro.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    CallbackTelemetrySink,
    JsonlTelemetrySink,
    MemoryTelemetrySink,
    TelemetryHub,
    load_telemetry,
    resolve_telemetry,
    telemetry_path_for_store,
)

TINY = CampaignSpec(gpus=("gtx480",), workloads=("vectoradd",),
                    scale="tiny", samples=4)


class TestHub:
    def test_fan_out_order_and_envelope(self):
        first, second = MemoryTelemetrySink(), MemoryTelemetrySink()
        hub = TelemetryHub(first, second)
        hub.record("alpha", value=1)
        hub.record("beta", value=2)
        for sink in (first, second):
            assert [e["event"] for e in sink.events] == ["alpha", "beta"]
            for event in sink.events:
                assert event["v"] == TELEMETRY_SCHEMA_VERSION
                assert isinstance(event["ts"], float)
        # both sinks see the *same* dicts, in sequence order
        assert first.events[0] is second.events[0]
        assert [e["seq"] for e in first.events] == [0, 1]

    def test_failing_sink_is_dropped_not_propagated(self):
        class Exploding(MemoryTelemetrySink):
            def emit(self, event):
                raise RuntimeError("disk full")

        survivor = MemoryTelemetrySink()
        hub = TelemetryHub(Exploding(), survivor)
        hub.record("alpha")
        hub.record("beta")
        assert hub.dropped == 2
        assert [e["event"] for e in survivor.events] == ["alpha", "beta"]

    def test_hubs_nest_restamping_the_envelope(self):
        inner = MemoryTelemetrySink()
        outer = TelemetryHub(TelemetryHub(inner))
        outer.record("alpha", value=7)
        outer.record("beta")
        assert [e["event"] for e in inner.events] == ["alpha", "beta"]
        assert inner.events[0]["value"] == 7
        assert [e["seq"] for e in inner.events] == [0, 1]

    def test_callback_sink_streams_and_validates(self):
        seen = []
        hub = TelemetryHub(CallbackTelemetrySink(seen.append))
        hub.record("alpha")
        assert seen[0]["event"] == "alpha"
        with pytest.raises(ConfigError):
            CallbackTelemetrySink("not callable")


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        hub = TelemetryHub(JsonlTelemetrySink(path))
        hub.record("alpha", kind="golden", nested={"a": [1, 2]})
        hub.record("beta")
        hub.close()
        events = load_telemetry(path)
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["nested"] == {"a": [1, 2]}
        assert events[0]["v"] == TELEMETRY_SCHEMA_VERSION

    def test_appends_across_hubs(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        for name in ("first", "second"):
            hub = TelemetryHub(JsonlTelemetrySink(path))
            hub.record(name)
            hub.close()
        assert [e["event"] for e in load_telemetry(path)] == \
            ["first", "second"]

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        hub = TelemetryHub(JsonlTelemetrySink(path))
        hub.record("alpha")
        hub.close()
        with path.open("a") as handle:
            handle.write('{"v": 1, "seq": 99, "ev')  # killed mid-write
        assert [e["event"] for e in load_telemetry(path)] == ["alpha"]

    def test_store_sibling_path(self):
        assert str(telemetry_path_for_store("results/store.jsonl")) == \
            "results/store.telemetry.jsonl"


class TestResolve:
    def test_off_settings(self):
        assert resolve_telemetry(None, None) == (None, False)
        assert resolve_telemetry(False, None) == (None, False)

    def test_true_needs_a_store_path(self):
        with pytest.raises(ConfigError, match="store"):
            resolve_telemetry(True, None)

    def test_explicit_path_and_sink_are_owned(self, tmp_path):
        hub, owned = resolve_telemetry(str(tmp_path / "t.jsonl"), None)
        assert owned and isinstance(hub, TelemetryHub)
        hub, owned = resolve_telemetry(MemoryTelemetrySink(), None)
        assert owned and isinstance(hub, TelemetryHub)

    def test_caller_hub_is_not_owned(self):
        caller = TelemetryHub()
        hub, owned = resolve_telemetry(caller, None)
        assert hub is caller and not owned

    def test_bad_setting_is_friendly(self):
        with pytest.raises(ConfigError, match="telemetry"):
            resolve_telemetry(3.14, None)


class TestEngineIntegration:
    def test_campaign_event_stream(self, tmp_path):
        clear_memory_cache()
        mem = MemoryTelemetrySink()
        store = tmp_path / "store.jsonl"
        run_campaign(TINY, store=str(store), telemetry=TelemetryHub(mem))
        types = [e["event"] for e in mem.events]
        assert types[0] == "campaign_begin"
        assert types[-1] == "campaign_end"
        for expected in ("golden_cache", "job_start", "job_finish",
                         "cell_finish"):
            assert expected in types
        assert [e["seq"] for e in mem.events] == list(range(len(mem.events)))
        begin = mem.of_type("campaign_begin")[0]
        assert begin["cells"] == 1 and begin["workers"] == 1
        finish = mem.of_type("job_finish")[0]
        assert finish["kind"] and finish["fp"]
        assert finish["wall_s"] >= 0 and finish["work_s"] >= 0
        end = mem.of_type("campaign_end")[0]
        assert end["jobs_executed"] == end["jobs_total"]

    def test_cached_replay_emits_job_cached(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign(TINY, store=str(store))
        mem = MemoryTelemetrySink()
        result = run_campaign(TINY, store=str(store),
                              telemetry=TelemetryHub(mem))
        assert result.stats.executed == 0
        cached = mem.of_type("job_cached")
        assert cached and all(e["source"] in ("memory", "store")
                              for e in cached)
        assert not mem.of_type("job_start")

    def test_spec_field_turns_telemetry_on(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign(TINY.replace(telemetry=True), store=str(store))
        events = load_telemetry(telemetry_path_for_store(store))
        assert [e["event"] for e in events][0] == "campaign_begin"

    def test_sweep_shares_one_stream(self, tmp_path):
        store = tmp_path / "sweep.jsonl"
        run_sweep(TINY.replace(telemetry=True), {"seed": [0, 1]},
                  store=str(store))
        events = load_telemetry(telemetry_path_for_store(store))
        types = [e["event"] for e in events]
        assert types[0] == "sweep_begin" and types[-1] == "sweep_end"
        assert types.count("campaign_begin") == 2
        assert types.count("campaign_end") == 2
        # one hub, one monotonic sequence across all children
        assert [e["seq"] for e in events] == list(range(len(events)))


def _semantic_records(path):
    """Store records with wall-time measurement fields stripped."""
    def clean(value):
        if isinstance(value, dict):
            return {k: clean(v) for k, v in value.items()
                    if not k.endswith("_time_s")}
        if isinstance(value, list):
            return [clean(item) for item in value]
        return value

    return [clean(json.loads(line))
            for line in path.read_text().splitlines() if line.strip()]


class TestObservabilityOnly:
    def test_store_parity_on_vs_off(self, tmp_path):
        on, off = tmp_path / "on.jsonl", tmp_path / "off.jsonl"
        spec = TINY.replace(workloads=("vectoradd", "histogram"))
        clear_memory_cache()
        run_campaign(spec, store=str(on), telemetry=True)
        clear_memory_cache()
        run_campaign(spec, store=str(off), telemetry=False)
        assert _semantic_records(on) == _semantic_records(off)

    def test_telemetry_joins_no_fingerprint(self):
        assert cell_fingerprints(TINY) == \
            cell_fingerprints(TINY.replace(telemetry=True))
        assert cell_fingerprints(TINY) == \
            cell_fingerprints(TINY.replace(telemetry="elsewhere.jsonl"))

    def test_telemetry_on_store_resumes_with_zero_executed(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_campaign(TINY, store=str(store), telemetry=False)
        result = run_campaign(TINY.replace(telemetry=True), store=str(store))
        assert result.stats.executed == 0


class TestSpecField:
    def test_validation(self):
        TINY.replace(telemetry=True)
        TINY.replace(telemetry=False)
        TINY.replace(telemetry="events.jsonl")
        with pytest.raises(ConfigError, match="telemetry"):
            TINY.replace(telemetry=3)
        with pytest.raises(ConfigError, match="telemetry"):
            TINY.replace(telemetry="")

    def test_serialization_round_trip(self, tmp_path):
        for value in (True, "events.jsonl"):
            spec = TINY.replace(telemetry=value)
            assert CampaignSpec.from_dict(spec.to_dict()) == spec
            path = tmp_path / "spec.toml"
            spec.to_file(path)
            assert CampaignSpec.from_file(path).telemetry == value
