"""CampaignSpec: validation, serialization, sweeps, fingerprints, shims.

The spec API's contract has four load-bearing pieces, each pinned
here:

* construction validates every field against the relevant registry
  with a ConfigError naming the offending field;
* TOML/JSON round trips are exact (``from_dict(to_dict(s)) == s``);
* sweeps expand the axis product in row-major order and re-validate
  every child;
* spec fields map onto the same job fingerprints as the legacy kwarg
  era — a store written through the kwarg shims resumes under the
  spec API with zero jobs executed — and every legacy entry point
  emits a DeprecationWarning exactly when shimming.
"""

from __future__ import annotations

import warnings

import pytest

from repro.engine.matrix import cell_fingerprints, run_campaign
from repro.engine.scheduler import CampaignStats
from repro.errors import ConfigError
from repro.reliability.campaign import run_cell, run_matrix
from repro.reliability.liveness import AceMode
from repro.spec import CampaignSpec, expand_sweep, run_sweep
from tests.conftest import MINI_AMD, MINI_NVIDIA


class TestValidation:
    """Every bad field fails loudly, naming the field."""

    @pytest.mark.parametrize("kwargs,needle", [
        ({"gpus": ("nosuchchip",)}, "gpus"),
        ({"gpus": (42,)}, "gpus"),
        ({"workloads": ("nosuchbench",)}, "workloads"),
        ({"scale": "huge"}, "scale"),
        ({"samples": 0}, "samples"),
        ({"samples": "many"}, "samples"),
        ({"samples": True}, "samples"),
        ({"seed": -1}, "seed"),
        ({"scheduler": "fifo"}, "scheduler"),
        ({"structures": ("l2_cache",)}, "structures"),
        ({"structures": ()}, "structures"),
        ({"fault_model": "gamma_ray"}, "fault_model"),
        ({"ace_mode": "optimistic"}, "ace_mode"),
        ({"checkpoint_interval": 0}, "checkpoint_interval"),
        ({"checkpoint_interval": "sometimes"}, "checkpoint_interval"),
        ({"shard_size": 0}, "shard_size"),
        ({"raw_fit_per_bit": 0.0}, "raw_fit_per_bit"),
        ({"raw_fit_per_bit": "big"}, "raw_fit_per_bit"),
        ({"name": 7}, "name"),
    ])
    def test_bad_field_raises_config_error(self, kwargs, needle):
        with pytest.raises(ConfigError) as excinfo:
            CampaignSpec(**kwargs)
        assert needle in str(excinfo.value)
        assert "Traceback" not in str(excinfo.value)

    def test_registry_errors_name_valid_choices(self):
        with pytest.raises(ConfigError, match="simt_stack"):
            CampaignSpec(structures=("l2_cache",))
        with pytest.raises(ConfigError, match="transient"):
            CampaignSpec(fault_model="gamma_ray")
        with pytest.raises(ConfigError, match="matrixMul"):
            CampaignSpec(workloads=("nosuchbench",))

    def test_normalization(self):
        spec = CampaignSpec(gpus="gtx480", workloads="vectoradd",
                            structures="register_file",
                            ace_mode="lane_masked", raw_fit_per_bit=1)
        assert spec.gpus == ("gtx480",)
        assert spec.workloads == ("vectoradd",)
        assert spec.structures == ("register_file",)
        assert spec.ace_mode is AceMode.LANE_MASKED
        assert spec.raw_fit_per_bit == 1.0
        # structures dedupe, order kept
        spec = CampaignSpec(structures=("local_memory", "register_file",
                                        "local_memory"))
        assert spec.structures == ("local_memory", "register_file")

    def test_gpu_config_objects_accepted(self):
        spec = CampaignSpec(gpus=(MINI_NVIDIA, MINI_AMD))
        assert spec.resolved_gpus() == [MINI_NVIDIA, MINI_AMD]

    def test_resolution_defaults(self):
        spec = CampaignSpec()
        assert spec.resolved_structures() == ("register_file",
                                              "local_memory")
        assert len(spec.resolved_gpus()) == 4
        assert len(spec.resolved_workloads()) == 10
        assert spec.resolved_samples() >= 1
        assert spec.resolved_scale() in ("tiny", "small", "default")
        assert spec.resolved_shard_size() >= 1

    def test_single_requires_one_cell(self):
        with pytest.raises(ConfigError, match="exactly one"):
            CampaignSpec().single()
        config, workload = CampaignSpec(
            gpus=(MINI_NVIDIA,), workloads=("vectoradd",)).single()
        assert config is MINI_NVIDIA and workload == "vectoradd"

    def test_replace_revalidates_and_rejects_unknown(self):
        spec = CampaignSpec(samples=5)
        assert spec.replace(samples=9).samples == 9
        with pytest.raises(ConfigError, match="samples"):
            spec.replace(samples=0)
        with pytest.raises(ConfigError, match="valid keys"):
            spec.replace(smaples=9)


class TestSerialization:
    """to_dict/from_dict and TOML/JSON files round-trip exactly."""

    SPEC = CampaignSpec(
        gpus=("gtx480", "hd7970"), workloads=("vectoradd", "histogram"),
        scale="tiny", samples=12, seed=3, scheduler="gto",
        structures=("register_file", "simt_stack"), fault_model="mbu",
        ace_mode="lane_masked", checkpoint_interval=500, shard_size=7,
        raw_fit_per_bit=2e-3, name="round trip")

    def test_dict_round_trip(self):
        assert CampaignSpec.from_dict(self.SPEC.to_dict()) == self.SPEC
        assert CampaignSpec.from_dict({}) == CampaignSpec()

    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "spec.toml"
        self.SPEC.to_file(path)
        assert CampaignSpec.from_file(path) == self.SPEC

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        self.SPEC.to_file(path)
        assert CampaignSpec.from_file(path) == self.SPEC

    def test_auto_checkpoint_round_trips(self, tmp_path):
        spec = CampaignSpec(checkpoint_interval="auto")
        path = tmp_path / "auto.toml"
        spec.to_file(path)
        assert CampaignSpec.from_file(path).checkpoint_interval == "auto"

    def test_embedded_gpu_config_json_round_trip(self, tmp_path):
        spec = CampaignSpec(gpus=(MINI_NVIDIA,), workloads=("vectoradd",))
        path = tmp_path / "custom.json"
        spec.to_file(path)
        loaded = CampaignSpec.from_file(path)
        assert loaded.gpus == (MINI_NVIDIA,)

    def test_embedded_gpu_config_rejected_in_toml(self, tmp_path):
        spec = CampaignSpec(gpus=(MINI_NVIDIA,))
        with pytest.raises(ConfigError, match="json"):
            spec.to_file(tmp_path / "custom.toml")

    def test_unknown_key_names_key_and_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            CampaignSpec.from_dict({"smaples": 5})
        message = str(excinfo.value)
        assert "smaples" in message and "valid keys" in message
        assert "samples" in message

    def test_unknown_key_in_file_names_file(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('smaples = 5\n')
        with pytest.raises(ConfigError, match="smaples"):
            CampaignSpec.from_file(path)

    def test_missing_file_and_bad_extension(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            CampaignSpec.from_file(tmp_path / "nope.toml")
        path = tmp_path / "spec.yaml"
        path.write_text("samples: 5\n")
        with pytest.raises(ConfigError, match="yaml"):
            CampaignSpec.from_file(path)
        with pytest.raises(ConfigError, match="yaml"):
            CampaignSpec().to_file(tmp_path / "out.yaml")

    def test_parse_error_is_config_error(self, tmp_path):
        path = tmp_path / "torn.toml"
        path.write_text("samples = [unclosed\n")
        with pytest.raises(ConfigError, match="parse"):
            CampaignSpec.from_file(path)


class TestSweep:
    def test_expansion_count_and_order(self):
        base = CampaignSpec(name="base")
        children = base.sweep(fault_model=["transient", "stuck_at"],
                              seed=range(3))
        assert len(children) == 6
        # Row-major: last axis (seed) varies fastest.
        assert [c.seed for c in children] == [0, 1, 2, 0, 1, 2]
        assert [c.fault_model for c in children[:3]] == ["transient"] * 3
        assert children[0].name == "base: fault_model=transient, seed=0"

    def test_structures_axis_accepts_sets_and_scalars(self):
        children = CampaignSpec().sweep(
            structures=[("register_file", "local_memory"), "simt_stack"])
        assert children[0].structures == ("register_file", "local_memory")
        assert children[1].structures == ("simt_stack",)
        assert children[1].name == "structures=simt_stack"

    def test_children_are_validated(self):
        with pytest.raises(ConfigError, match="fault_model"):
            CampaignSpec().sweep(fault_model=["transient", "gamma_ray"])

    def test_bad_axis_errors(self):
        with pytest.raises(ConfigError, match="at least one axis"):
            expand_sweep(CampaignSpec(), {})
        with pytest.raises(ConfigError, match="valid axes"):
            CampaignSpec().sweep(nosuch=[1, 2])
        with pytest.raises(ConfigError, match="no values"):
            CampaignSpec().sweep(seed=[])
        with pytest.raises(ConfigError, match="valid axes"):
            CampaignSpec().sweep(name=["a"])

    def test_scalar_axis_value_allowed(self):
        children = CampaignSpec().sweep(fault_model="stuck_at")
        assert len(children) == 1
        assert children[0].fault_model == "stuck_at"


KWARGS = dict(scale="tiny", samples=6, seed=5)
SPEC = CampaignSpec(gpus=(MINI_NVIDIA,), workloads=("vectoradd",), **KWARGS)


class TestFingerprintStability:
    """Same campaign, three expressions, one set of fingerprints."""

    def test_legacy_store_resumes_under_spec_with_zero_jobs(self, tmp_path):
        store = tmp_path / "store.jsonl"
        with pytest.deprecated_call():
            legacy = run_campaign(gpus=[MINI_NVIDIA],
                                  workloads=["vectoradd"],
                                  store=store, **KWARGS)
        stats = CampaignStats()
        again = run_campaign(SPEC, store=store, stats=stats)
        assert stats.executed == 0
        assert stats.cached >= 1
        assert [c.row() for c in again.cells] == \
            [c.row() for c in legacy.cells]

    def test_cell_fingerprints_match_store_records(self, tmp_path):
        import json
        store = tmp_path / "store.jsonl"
        run_campaign(SPEC, store=store)
        recorded = {json.loads(line)["fp"]
                    for line in store.read_text().splitlines()}
        fps = cell_fingerprints(SPEC)
        assert fps and set(fps.values()) <= recorded

    def test_run_cell_spec_matches_legacy(self):
        def results(cell):
            # Everything but the wall-time measurement fields.
            return {key: value for key, value in cell.row().items()
                    if not key.endswith("_time_s")}
        with pytest.deprecated_call():
            legacy = run_cell(MINI_NVIDIA, "vectoradd", **KWARGS)
        assert results(run_cell(SPEC)) == results(legacy)

    def test_spec_file_expression_matches_in_memory_spec(self, tmp_path):
        # The third expression of the acceptance contract: a spec file
        # (named chips resolve to the same scaled configs).
        spec = CampaignSpec(gpus=("gtx480",), workloads=("vectoradd",),
                            scale="tiny", samples=4)
        path = tmp_path / "cell.toml"
        spec.to_file(path)
        loaded = CampaignSpec.from_file(path)
        assert cell_fingerprints(loaded) == cell_fingerprints(spec)


class TestDeprecatedShims:
    """Every legacy entry point shims with a DeprecationWarning."""

    def test_run_cell_legacy_warns(self):
        with pytest.deprecated_call():
            run_cell(MINI_NVIDIA, "vectoradd", scale="tiny", samples=2)

    def test_run_matrix_legacy_warns(self):
        with pytest.deprecated_call():
            run_matrix(gpus=[MINI_NVIDIA], workloads=["vectoradd"],
                       scale="tiny", samples=2)

    def test_run_campaign_legacy_warns(self):
        with pytest.deprecated_call():
            run_campaign(gpus=[MINI_NVIDIA], workloads=["vectoradd"],
                         scale="tiny", samples=2)

    def test_fig_harness_legacy_warns(self):
        from repro.experiments.fig1_regfile_avf import run_fig1
        with pytest.deprecated_call():
            run_fig1(gpus=[MINI_NVIDIA], workloads=["vectoradd"],
                     scale="tiny", samples=2)

    def test_structures_alias_warns(self):
        import repro.sim.faults as faults
        from repro.arch.structures import DATAPATH_STRUCTURES
        with pytest.deprecated_call():
            value = faults.STRUCTURES
        assert value == DATAPATH_STRUCTURES

    def test_run_cell_legacy_positionals_and_keyword_name(self):
        # The old signature accepted run_cell(config, workload, scale,
        # samples, seed, ...) positionally and workload_name= as a
        # keyword.
        with pytest.deprecated_call():
            positional = run_cell(MINI_NVIDIA, "vectoradd", "tiny", 2, 7)
        with pytest.deprecated_call():
            keyword = run_cell(config=MINI_NVIDIA,
                               workload_name="vectoradd",
                               scale="tiny", samples=2, seed=7)
        assert positional.scale == keyword.scale == "tiny"
        assert positional.samples == keyword.samples == 2
        assert positional.seed == keyword.seed == 7
        with pytest.raises(ConfigError, match="positional"):
            run_cell(MINI_NVIDIA, "vectoradd", "tiny", 2, 0, "rr",
                     ("register_file",), "conservative", 1e-3, "extra")

    def test_bare_legacy_calls_keep_full_size_gpu_default(self, monkeypatch):
        # The kwarg era defaulted to the *full-size* presets; spec-less
        # calls must keep doing so (a bare CampaignSpec resolves to the
        # scaled ones). Stub the preset list so the campaign stays tiny.
        import repro.arch.presets as presets
        import repro.engine.matrix as matrix
        monkeypatch.setattr(presets, "list_gpus", lambda: [MINI_NVIDIA])
        monkeypatch.setattr(matrix, "list_gpus", lambda: [MINI_NVIDIA])
        with pytest.deprecated_call():
            cells = run_matrix(workloads=["vectoradd"], scale="tiny",
                               samples=2)
        assert [c.gpu for c in cells] == [MINI_NVIDIA.name]
        with pytest.deprecated_call():
            result = run_campaign(workloads=["vectoradd"], scale="tiny",
                                  samples=2)
        assert [c.gpu for c in result.cells] == [MINI_NVIDIA.name]

    def test_spec_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_cell(SPEC.replace(samples=2))

    def test_bare_legacy_matrix_call_does_not_warn(self, monkeypatch):
        # run_matrix() with zero kwargs keeps the legacy full-size
        # default *silently* — there are no kwargs to migrate, and the
        # generic warning's hint would change which chips run.
        import repro.arch.presets as presets
        import repro.engine.matrix as matrix
        monkeypatch.setattr(presets, "list_gpus", lambda: [MINI_NVIDIA])
        monkeypatch.setattr(matrix, "list_gpus", lambda: [MINI_NVIDIA])
        monkeypatch.setenv("REPRO_FI_SAMPLES", "2")
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setattr("repro.spec.campaign.KERNEL_NAMES",
                            ("vectoradd",))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cells = run_matrix()
        assert [c.gpu for c in cells] == [MINI_NVIDIA.name]

    def test_spec_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(ConfigError, match="both"):
            run_matrix(SPEC, samples=3)

    def test_spec_plus_explicit_none_kwargs_is_fine(self):
        # None meant "default" in every legacy signature; a partially
        # migrated caller passing spec plus fault_model=None must work.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cells = run_matrix(SPEC.replace(samples=2), fault_model=None)
        assert len(cells) == 1

    def test_unknown_legacy_kwarg_is_config_error(self):
        with pytest.raises(ConfigError, match="smaples"):
            run_matrix(smaples=3)

    def test_non_spec_positional_is_config_error(self):
        with pytest.raises(ConfigError, match="CampaignSpec"):
            run_matrix("gtx480")
        # Old positional gpus-list form gets a migration hint.
        with pytest.raises(ConfigError, match="gpus="):
            run_matrix([MINI_NVIDIA])

    def test_run_cell_duplicate_positional_keyword_raises(self):
        with pytest.raises(ConfigError, match="multiple values"):
            run_cell(MINI_NVIDIA, "vectoradd", "small", scale="tiny")


class TestHarnessSpecPath:
    """The fig harnesses consume specs and fill their own defaults."""

    def test_fig2_defaults_local_memory_and_subset(self):
        from repro.experiments.fig2_localmem_avf import (
            local_memory_workloads,
            run_fig2,
        )
        spec = CampaignSpec(gpus=(MINI_NVIDIA,), workloads=("histogram",),
                            scale="tiny", samples=2)
        cells, report = run_fig2(spec)
        assert [c.workload for c in cells] == ["histogram"]
        assert "Local Memory" in report
        # Unset workloads resolve to the local-memory subset.
        bare = CampaignSpec(gpus=(MINI_NVIDIA,), scale="tiny", samples=2)
        cells, _ = run_fig2(bare.replace(workloads=None))
        assert {c.workload for c in cells} == \
            set(local_memory_workloads("tiny"))

    def test_model_compare_spec_and_subset(self):
        from repro.experiments.fig_model_compare import run_model_compare
        spec = CampaignSpec(gpus=(MINI_NVIDIA,), workloads=("vectoradd",),
                            scale="tiny", samples=2)
        cells, report = run_model_compare(spec,
                                          fault_models=["stuck_at"])
        assert [c.fault_model for c in cells] == ["stuck_at"]
        assert "stuck_at" in report
        assert "models: stuck_at)" in report  # the only compared model
        # Legacy fault_model kwarg restricts the comparison, as before.
        with pytest.deprecated_call():
            cells, _ = run_model_compare(
                gpus=[MINI_NVIDIA], workloads=["vectoradd"], scale="tiny",
                samples=2, fault_model="mbu")
        assert [c.fault_model for c in cells] == ["mbu"]


class TestRunSweep:
    def test_sweep_shares_store_and_goldens(self, tmp_path):
        store = tmp_path / "sweep.jsonl"
        base = SPEC.replace(samples=4, name="mini")
        stats = CampaignStats()
        result = run_sweep(base, {"fault_model": ["transient", "stuck_at"]},
                           store=store, stats=stats)
        assert len(result.runs) == 2
        assert [run.spec.fault_model for run in result.runs] == \
            ["transient", "stuck_at"]
        # One golden simulation serves both children: the second
        # child's golden job is always a cache hit (at most one
        # execution — zero when an earlier test already warmed the
        # engine's in-process golden cache).
        golden = stats.by_kind["golden"]
        assert golden["cached"] + golden["executed"] == 2
        assert golden["executed"] <= 1
        assert golden["cached"] >= 1
        assert result.cells and len(result.cells) == 2
        summary = result.summary()
        assert "fault_model=stuck_at" in summary
        assert "Sweep summary" in summary

    def test_sweep_rerun_is_fully_cached(self, tmp_path):
        store = tmp_path / "sweep.jsonl"
        base = SPEC.replace(samples=4)
        axes = {"seed": [0, 1]}
        run_sweep(base, axes, store=store)
        stats = CampaignStats()
        run_sweep(base, axes, store=store, stats=stats)
        assert stats.executed == 0
