"""Golden-value pins: the numbers CI gates fault-model refactors on.

These tests hardcode the AVF-FI outcome counts of one fully-specified
(GPU, workload, seed) cell under the default transient model. Any
refactor of the fault subsystem that silently changes the paper's
numbers — sampling order, pruning semantics, application, reduction —
fails here instead of shipping skewed figures. Update the pins only
when a change is *supposed* to alter results, and say why in the
commit.
"""

from repro.reliability.campaign import run_cell
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE
from tests.conftest import MINI_NVIDIA

#: The pinned cell: MINI_NVIDIA x matrixMul(tiny) x seed 2017, 60 samples.
PINNED = {
    REGISTER_FILE: {"masked": 50, "sdc": 4, "due": 6, "pruned": 50},
    LOCAL_MEMORY: {"masked": 55, "sdc": 5, "due": 0, "pruned": 55},
}
PINNED_CYCLES = 7892


class TestTransientGoldenValues:
    def test_pinned_cell_counts(self):
        cell = run_cell(MINI_NVIDIA, "matrixMul", scale="tiny",
                        samples=60, seed=2017)
        assert cell.cycles == PINNED_CYCLES
        for structure, expected in PINNED.items():
            estimate = cell.fi[structure]
            actual = {
                "masked": estimate.masked,
                "sdc": estimate.sdc,
                "due": estimate.due,
                "pruned": estimate.pruned,
            }
            assert actual == expected, structure

    def test_pinned_avf(self):
        cell = run_cell(MINI_NVIDIA, "matrixMul", scale="tiny",
                        samples=60, seed=2017)
        assert cell.avf_fi(REGISTER_FILE) == (4 + 6) / 60
        assert cell.avf_fi(LOCAL_MEMORY) == (5 + 0) / 60
        assert cell.fault_model == "transient"
