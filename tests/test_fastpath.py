"""Fast path: vector backend helpers and cross-sample suffix memo.

Three layers of coverage for the campaign acceleration stack:

* the :mod:`repro.sim.vector` helpers against their per-lane reference
  loops (bit-exactness is the backend's whole contract);
* backend and memo *parity* — identical campaign outcomes with the
  fast path on or off, plus fingerprint transparency (a store written
  under one backend resumes under the other with zero jobs executed);
* the :class:`repro.checkpoint.SuffixMemo` protocol itself, including
  the ISSUE-mandated constructed-collision case: a primary-digest
  match whose independent secondary digest disagrees must never reuse
  an outcome.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.checkpoint import MemoRecord, SuffixMemo
from repro.checkpoint.digest import digest_machine, digest_machine_pair
from repro.engine import clear_memory_cache, run_campaign
from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.reliability.fi import resimulate_plan, run_fi_campaign, run_golden
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan
from repro.sim.gpu import Gpu
from repro.sim import vector
from repro.spec import CampaignSpec
from tests.conftest import MINI_AMD, MINI_NVIDIA

WORKLOAD = "histogram"


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_memory_cache()
    vector.clear_caches()
    yield
    clear_memory_cache()
    vector.clear_caches()


# ----------------------------------------------------------------------
# Vector helpers vs their reference loops
# ----------------------------------------------------------------------
class TestVectorHelpers:
    @pytest.mark.parametrize("width", [32, 64, 20])
    def test_mask_round_trip(self, width):
        rng = np.random.default_rng(width)
        masks = [0, 1, (1 << width) - 1, 1 << (width - 1)]
        # Compose from 32-bit halves: numpy bounds cap at int64.
        masks += [
            (int(hi) << 32 | int(lo)) & ((1 << width) - 1)
            for hi, lo in rng.integers(0, 1 << 32, (16, 2),
                                       dtype=np.uint64)
        ]
        for mask in masks:
            bools = vector.mask_to_bools(mask, width)
            reference = [bool((mask >> lane) & 1) for lane in range(width)]
            assert bools.tolist() == reference
            assert vector.bools_to_mask(bools) == mask

    def test_mask_arrays_cached_and_read_only(self):
        first = vector.mask_to_bools(0b1011, 32)
        assert vector.mask_to_bools(0b1011, 32) is first
        with pytest.raises(ValueError):
            first[0] = False

    def test_const_u32_cached_and_read_only(self):
        arr = vector.const_u32(32, 7)
        assert arr.dtype == np.uint32 and (arr == 7).all()
        assert vector.const_u32(32, 7) is arr
        with pytest.raises(ValueError):
            arr[0] = 0
        # Full-range values must survive the uint32 representation.
        assert (vector.const_u32(8, 0xFFFFFFFF) == 0xFFFFFFFF).all()

    def test_const_bool(self):
        assert vector.const_bool(64, True).all()
        assert not vector.const_bool(64, False).any()

    @staticmethod
    def _reference_scatter(data, index, values):
        data = data.copy()
        old = np.empty(index.size, dtype=np.uint32)
        for lane, (i, v) in enumerate(zip(index, values)):
            old[lane] = data[i]
            data[i] = (int(data[i]) + int(v)) & 0xFFFFFFFF
        return data, old

    @pytest.mark.parametrize("case", ["unique", "duplicates", "wraparound"])
    def test_scatter_add_matches_reference(self, case):
        rng = np.random.default_rng(hash(case) % 2**32)
        n, size = 64, 16
        if case == "unique":
            index = rng.permutation(size)[:size].astype(np.int64)
            n = size
        else:
            index = rng.integers(0, size, n)
        if case == "wraparound":
            values = rng.integers(0xFFFF0000, 0x100000000, n,
                                  dtype=np.uint64).astype(np.uint32)
            data = np.full(size, 0xFFFFFF00, dtype=np.uint32)
        else:
            values = rng.integers(0, 1000, n).astype(np.uint32)
            data = rng.integers(0, 1 << 32, size,
                                dtype=np.uint64).astype(np.uint32)
        expect_data, expect_old = self._reference_scatter(data, index, values)
        got = data.copy()
        old = vector.scatter_add_serialized(got, index, values)
        assert (got == expect_data).all()
        assert (old == expect_old).all()

    def test_scatter_add_empty(self):
        data = np.arange(4, dtype=np.uint32)
        old = vector.scatter_add_serialized(
            data, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32))
        assert old.size == 0 and (data == np.arange(4)).all()


# ----------------------------------------------------------------------
# Backend parity: python and vector interpreters, identical campaigns
# ----------------------------------------------------------------------
def _outcome_rows(campaign):
    rows = [
        (r.plan.structure, r.plan.core, r.plan.word, r.plan.bit,
         r.plan.cycle, r.outcome, r.detail, r.corrupted_words,
         r.cycles, r.early_exit)
        for r in campaign.results
    ]
    counts = {
        s: (e.masked, e.sdc, e.due, e.pruned, e.resimulated)
        for s, e in campaign.estimates.items()
    }
    return rows, counts


class TestBackendParity:
    @pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model", ["transient", "stuck_at", "mbu"])
    def test_campaign_identical_across_backends(self, config, model):
        workload = get_workload(WORKLOAD, "tiny")
        by_backend = {}
        for backend in ("python", "vector"):
            cfg = dataclasses.replace(config, backend=backend)
            golden = run_golden(cfg, workload)
            campaign = run_fi_campaign(
                cfg, workload, golden, samples=10, seed=7,
                structures=(REGISTER_FILE, LOCAL_MEMORY),
                fault_model=model, suffix_memo=False, keep_results=True)
            by_backend[backend] = (golden.outputs, golden.cycles,
                                   _outcome_rows(campaign))
        py, vec = by_backend["python"], by_backend["vector"]
        assert sorted(py[0]) == sorted(vec[0])
        assert all(np.array_equal(py[0][k], vec[0][k]) for k in py[0])
        assert py[1:] == vec[1:]

    def test_fingerprint_transparent_resume(self, tmp_path):
        """Backend + memo join no fingerprint: cross-config resume is free."""
        store = tmp_path / "store.jsonl"
        base = dict(gpus=(MINI_NVIDIA,), workloads=(WORKLOAD,),
                    scale="tiny", samples=8, seed=3,
                    structures=(REGISTER_FILE, LOCAL_MEMORY),
                    checkpoint_interval="auto")
        first = run_campaign(
            CampaignSpec(backend="python", suffix_memo=False, **base),
            store=store)
        assert first.stats.executed > 0
        clear_memory_cache()
        second = run_campaign(
            CampaignSpec(backend="vector", suffix_memo=True, **base),
            store=store)
        assert second.stats.executed == 0
        assert second.stats.cached == second.stats.total


# ----------------------------------------------------------------------
# SuffixMemo protocol units
# ----------------------------------------------------------------------
_LABEL = ("interval", 100)
_TIMES = (100, 100)
_RECORD = MemoRecord(outcome="sdc", detail="", corrupted_words=3,
                     cycles=1234, early_exit=False)


class TestSuffixMemo:
    def test_should_digest_gates_first_bucket_visit(self):
        memo = SuffixMemo()
        assert memo.should_digest(_LABEL, _TIMES) is False
        assert memo.should_digest(_LABEL, _TIMES) is True
        # A different bucket starts cold again.
        assert memo.should_digest(_LABEL, (100, 101)) is False

    def test_observe_commit_then_hit(self):
        memo = SuffixMemo()
        memo.begin_run()
        assert memo.observe(_LABEL, _TIMES, "p1", "s1") is None
        memo.commit(_RECORD)
        memo.begin_run()
        record = memo.observe(_LABEL, _TIMES, "p1", "s1")
        assert record == _RECORD
        assert memo.hits == 1 and memo.collisions == 0

    def test_constructed_collision_is_a_miss(self):
        """Equal primary digest + different secondary: never reuse."""
        memo = SuffixMemo()
        memo.begin_run()
        memo.observe(_LABEL, _TIMES, "shared-primary", "secondary-A")
        memo.commit(_RECORD)
        memo.begin_run()
        got = memo.observe(_LABEL, _TIMES, "shared-primary", "secondary-B")
        assert got is None
        assert memo.collisions == 1 and memo.hits == 0
        # The colliding observation joins no trail: committing this run
        # must not overwrite the stored entry with the wrong secondary.
        memo.commit(MemoRecord("due", "x", 0, 1, False))
        memo.begin_run()
        assert memo.observe(_LABEL, _TIMES, "shared-primary",
                            "secondary-A") == _RECORD

    def test_entry_cap_drops_new_entries(self):
        memo = SuffixMemo(max_entries=1)
        memo.begin_run()
        memo.observe(_LABEL, _TIMES, "p1", "s1")
        memo.observe(_LABEL, (1, 2), "p2", "s2")
        memo.commit(_RECORD)
        assert len(memo) == 1

    def test_digest_pair_primary_matches_single_digest(self):
        """The pair's first digest is byte-identical to digest_machine."""
        state = Gpu(MINI_NVIDIA).snapshot_state()
        primary, secondary = digest_machine_pair(0, [], state)
        assert primary == digest_machine(0, [], state)
        assert secondary != primary


# ----------------------------------------------------------------------
# Memo against real campaigns
# ----------------------------------------------------------------------
class TestMemoCampaign:
    def test_memo_hits_and_identical_outcomes(self):
        """Same-site stuck-at defects sampled at different cycles share
        a quiescent state; with the bucket gate, the third-and-later
        runs hit the memo. Outcomes must equal the memo-off runs."""
        config = MINI_NVIDIA
        workload = get_workload(WORKLOAD, "tiny")
        golden = run_golden(config, workload, checkpoint_interval=50)
        assert golden.snapshots is not None
        plans = [
            FaultPlan(structure=REGISTER_FILE, core=0, word=5, bit=3,
                      cycle=cycle, stuck_value=1)
            for cycle in (20, 25, 30, 35, 40)
        ]
        plain = [
            resimulate_plan(config, workload, plan, golden.outputs,
                            golden.cycles, golden.scheduler,
                            fault_model="stuck_at",
                            snapshots=golden.snapshots)
            for plan in plans
        ]
        memo = SuffixMemo()
        memoized = [
            resimulate_plan(config, workload, plan, golden.outputs,
                            golden.cycles, golden.scheduler,
                            fault_model="stuck_at",
                            snapshots=golden.snapshots, memo=memo)
            for plan in plans
        ]
        def comparable(results):
            return [(r.outcome, r.detail, r.corrupted_words, r.cycles)
                    for r in results]
        assert comparable(memoized) == comparable(plain)
        assert memo.hits >= 1
        assert memo.stats()["entries"] > 0

    def test_memo_inert_without_snapshots(self):
        """No checkpointed golden run: the memo is silently bypassed."""
        config = MINI_NVIDIA
        workload = get_workload(WORKLOAD, "tiny")
        golden = run_golden(config, workload)
        memo = SuffixMemo()
        plan = FaultPlan(structure=REGISTER_FILE, core=0, word=5, bit=3,
                         cycle=20, stuck_value=1)
        resimulate_plan(config, workload, plan, golden.outputs,
                        golden.cycles, golden.scheduler,
                        fault_model="stuck_at", snapshots=None, memo=memo)
        assert memo.stats() == {"hits": 0, "misses": 0, "collisions": 0,
                                "entries": 0}


# ----------------------------------------------------------------------
# Spec-level validation and resolution
# ----------------------------------------------------------------------
class TestSpecFastPathFields:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            CampaignSpec(backend="cuda")

    def test_non_bool_suffix_memo_rejected(self):
        with pytest.raises(ConfigError, match="suffix_memo"):
            CampaignSpec(suffix_memo="yes")

    def test_backend_override_applies_to_resolved_gpus(self):
        spec = CampaignSpec(gpus=(MINI_NVIDIA,), backend="python")
        assert [g.backend for g in spec.resolved_gpus()] == ["python"]

    def test_suffix_memo_defaults_on(self):
        assert CampaignSpec().resolved_suffix_memo() is True
        assert CampaignSpec(suffix_memo=False).resolved_suffix_memo() is False
