"""Tests for the findings-summary analysis layer."""

import math

import pytest

from repro.reliability.analysis import (
    FindingsSummary,
    ace_fi_ratios,
    avf_occupancy_correlation,
    summarize,
)
from repro.reliability.campaign import CellResult
from repro.reliability.epf import EpfResult
from repro.reliability.fi import AvfEstimate
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE


def make_cell(gpu, workload, rf_fi, rf_ace, rf_occ, lm_fi=0.02, lm_ace=0.021,
              lm_occ=0.05, epf=1e14):
    def estimate(structure, avf):
        failures = int(round(avf * 100))
        return AvfEstimate(
            structure=structure, samples=100, masked=100 - failures,
            sdc=failures, due=0, pruned=50, resimulated=50, wall_time_s=1.0,
        )

    return CellResult(
        gpu=gpu, workload=workload, scale="small", scheduler="rr",
        cycles=1000, num_launches=1,
        fi={REGISTER_FILE: estimate(REGISTER_FILE, rf_fi),
            LOCAL_MEMORY: estimate(LOCAL_MEMORY, lm_fi)},
        ace={REGISTER_FILE: rf_ace, LOCAL_MEMORY: lm_ace},
        occupancy={REGISTER_FILE: rf_occ, LOCAL_MEMORY: lm_occ},
        epf=EpfResult(gpu=gpu, workload=workload, cycles=1000, t_exec_s=1e-6,
                      eit=3.6e18, fit_by_structure={}, fit_gpu=100.0, epf=epf),
        golden_time_s=1.0, fi_time_s=2.0, samples=100, seed=0,
        uses_local_memory=True,
    )


@pytest.fixture
def cells():
    return [
        make_cell("A", "w1", rf_fi=0.10, rf_ace=0.20, rf_occ=0.5, epf=1e13),
        make_cell("A", "w2", rf_fi=0.02, rf_ace=0.05, rf_occ=0.1, epf=1e15),
        make_cell("B", "w1", rf_fi=0.30, rf_ace=0.45, rf_occ=0.9, epf=5e13),
        make_cell("B", "w2", rf_fi=0.05, rf_ace=0.08, rf_occ=0.2, epf=2e16),
    ]


class TestBuildingBlocks:
    def test_ace_fi_ratios(self, cells):
        rows = ace_fi_ratios(cells, REGISTER_FILE)
        assert len(rows) == 4
        gpu, workload, ratio = rows[0]
        assert (gpu, workload) == ("A", "w1")
        assert ratio == pytest.approx(2.0)

    def test_zero_fi_skipped(self, cells):
        cells.append(make_cell("C", "w1", rf_fi=0.0, rf_ace=0.1, rf_occ=0.3))
        rows = ace_fi_ratios(cells, REGISTER_FILE)
        assert all(gpu != "C" for gpu, _, _ in rows)

    def test_correlation_positive(self, cells):
        r = avf_occupancy_correlation(cells, REGISTER_FILE)
        assert r > 0.9

    def test_correlation_needs_three(self, cells):
        with pytest.raises(ValueError):
            avf_occupancy_correlation(cells[:2], REGISTER_FILE)

    def test_degenerate_correlation_is_zero(self):
        flat = [make_cell("A", f"w{i}", 0.1, 0.1, 0.5) for i in range(4)]
        assert avf_occupancy_correlation(flat, REGISTER_FILE) == 0.0


class TestSummary:
    def test_summarize_and_claims(self, cells):
        summary = summarize(cells)
        assert summary.avf_spread_by_gpu["A"] == pytest.approx(5.0)
        assert summary.claim_avf_varies()
        assert summary.claim_avf_tracks_occupancy()
        assert summary.claim_ace_overestimates_regfile()
        assert summary.claim_ace_close_on_localmem()
        assert summary.claim_epf_spans_orders()
        low, high = summary.epf_log10_range
        assert high - low == pytest.approx(math.log10(2e16 / 1e13))

    def test_real_mini_campaign_summary(self):
        """End-to-end: the claims machinery runs on real cells."""
        from repro.reliability.campaign import run_cell
        from tests.conftest import MINI_NVIDIA
        real = [
            run_cell(MINI_NVIDIA, name, scale="tiny", samples=30, seed=4)
            for name in ("matrixMul", "histogram", "scan")
        ]
        summary = summarize(real)
        assert math.isfinite(summary.occupancy_correlation[REGISTER_FILE])
        assert summary.epf_log10_range[0] > 0
