"""Exception taxonomy tests."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for cls in (errors.ConfigError, errors.AssemblyError,
                    errors.LaunchError, errors.SimFault, errors.MemoryFault,
                    errors.LocalMemoryFault, errors.WatchdogTimeout,
                    errors.BarrierDeadlock, errors.IllegalInstruction):
            assert issubclass(cls, errors.ReproError)

    def test_due_conditions_are_simfaults(self):
        """Everything the FI engine classifies as DUE derives SimFault."""
        for cls in (errors.MemoryFault, errors.LocalMemoryFault,
                    errors.WatchdogTimeout, errors.BarrierDeadlock,
                    errors.IllegalInstruction):
            assert issubclass(cls, errors.SimFault)

    def test_host_side_errors_are_not_simfaults(self):
        for cls in (errors.ConfigError, errors.AssemblyError,
                    errors.LaunchError):
            assert not issubclass(cls, errors.SimFault)


class TestMessages:
    def test_memory_fault_formats_address(self):
        fault = errors.MemoryFault(0xDEAD0, "load")
        assert "0x000dead0" in str(fault)
        assert fault.address == 0xDEAD0

    def test_local_memory_fault(self):
        fault = errors.LocalMemoryFault(0x5000, 0x4000)
        assert "0x5000" in str(fault)

    def test_watchdog_carries_budget(self):
        fault = errors.WatchdogTimeout(100, 50)
        assert fault.cycles == 100 and fault.budget == 50

    def test_assembly_error_line_prefix(self):
        error = errors.AssemblyError("bad thing", line=7)
        assert "line 7" in str(error)
        assert error.line == 7

    def test_assembly_error_without_line(self):
        error = errors.AssemblyError("bad thing")
        assert error.line is None
