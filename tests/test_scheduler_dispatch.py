"""Warp scheduler policies and chip-level block dispatch tests."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.arch.scaling import get_scaled_gpu
from repro.errors import ConfigError, LaunchError
from repro.sim.gpu import Gpu
from repro.sim.launch import LaunchConfig, pack_params
from repro.sim.scheduler import (
    GreedyThenOldestScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.sim.tracing import EventRecorder
from tests.conftest import MINI_NVIDIA, run_sass


@dataclass
class FakeWarp:
    wid: int
    last_issue: int = -1


class TestPolicies:
    def test_factory(self):
        assert isinstance(make_scheduler("rr"), RoundRobinScheduler)
        assert isinstance(make_scheduler("gto"), GreedyThenOldestScheduler)
        with pytest.raises(ConfigError):
            make_scheduler("fifo")

    def test_rr_rotates(self):
        policy = RoundRobinScheduler()
        warps = [FakeWarp(0), FakeWarp(1), FakeWarp(2)]
        assert policy.pick(warps, last_issued=0).wid == 1
        assert policy.pick(warps, last_issued=2).wid == 0
        assert policy.pick(warps, last_issued=-1).wid == 0

    def test_gto_prefers_current(self):
        policy = GreedyThenOldestScheduler()
        warps = [FakeWarp(0, 5), FakeWarp(1, 3), FakeWarp(2, 9)]
        assert policy.pick(warps, last_issued=2).wid == 2

    def test_gto_falls_back_to_oldest(self):
        policy = GreedyThenOldestScheduler()
        warps = [FakeWarp(0, 5), FakeWarp(1, 3), FakeWarp(2, 9)]
        assert policy.pick(warps, last_issued=7).wid == 1

    def test_policies_change_timing_not_results(self):
        source = """
.kernel t
.regs 8
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    S2R R2, SR_NTID_X
    IMAD R3, R1, R2, R0
    MOV R4, R3
    IMUL R4, R4, 3
    SHL R5, R3, 2
    IADD R5, R5, c[0]
    STG [R5], R4
    EXIT
"""
        results = {}
        for policy in ("rr", "gto"):
            gpu, snap = run_sass(
                source, {"out": 256 * 4}, ["out"], grid=(4,), block=(64,),
                scheduler=policy,
            )
            results[policy] = (snap["out"].copy(), gpu.chip_cycle)
        assert np.array_equal(results["rr"][0], results["gto"][0])


class TestDispatch:
    def _count_kernel(self):
        return """
.kernel t
.regs 8
.smem 0
    S2R R0, SR_CTAID_X
    SHL R1, R0, 2
    IADD R1, R1, c[0]
    MOV R2, 1
    STG [R1], R2
    EXIT
"""

    def test_every_block_runs_exactly_once(self):
        gpu, snap = run_sass(
            self._count_kernel(), {"out": 64 * 4}, ["out"], grid=(64,), block=(32,)
        )
        assert (snap["out"] == 1).all()

    def test_blocks_spread_across_cores(self):
        recorder = EventRecorder()
        gpu, _ = run_sass(
            self._count_kernel(), {"out": 64 * 4}, ["out"], grid=(8,), block=(32,),
            sink=recorder,
        )
        cores = {event[1] for event in recorder.block_events}
        assert cores == {0, 1}  # both mini cores used

    def test_allocs_match_frees(self):
        recorder = EventRecorder()
        run_sass(
            self._count_kernel(), {"out": 64 * 4}, ["out"], grid=(16,), block=(32,),
            sink=recorder,
        )
        allocs = [e for e in recorder.block_events if e[4] == "alloc"]
        frees = [e for e in recorder.block_events if e[4] == "free"]
        assert len(allocs) == 16
        assert len(frees) == 16

    def test_isa_mismatch_rejected(self):
        from repro.isa.si.parser import assemble_si
        program = assemble_si(".kernel t\n.vregs 4\n.sregs 8\n.lds 0\ns_endpgm\n")
        gpu = Gpu(MINI_NVIDIA)
        with pytest.raises(LaunchError, match="executes sass"):
            gpu.launch(LaunchConfig(program=program, grid=(1,), block=(64,)))

    def test_multi_launch_cycles_accumulate(self):
        from repro.isa.sass.parser import assemble_sass
        program = assemble_sass(self._count_kernel())
        gpu = Gpu(MINI_NVIDIA)
        base = gpu.mem.alloc("out", 1024).base
        launch = LaunchConfig(program=program, grid=(4,), block=(32,),
                              params=pack_params(base))
        first = gpu.launch(launch)
        mid = gpu.chip_cycle
        second = gpu.launch(launch)
        assert first > 0 and second > 0
        assert gpu.chip_cycle == mid + second

    def test_scaled_chip_runs_real_kernel(self):
        config = get_scaled_gpu("fx5800")
        from repro.kernels.registry import get_workload
        from repro.kernels.workload import run_workload, verify_against_reference
        workload = get_workload("vectoradd", "tiny")
        result = run_workload(Gpu(config), workload)
        assert verify_against_reference(workload, result.outputs) == []


class TestDeterminism:
    def test_same_seeded_run_reproduces_cycles(self):
        from repro.kernels.registry import get_workload
        from repro.kernels.workload import run_workload
        config = get_scaled_gpu("gtx480")
        workload = get_workload("histogram", "tiny")
        first = run_workload(Gpu(config), workload)
        second = run_workload(Gpu(config), workload)
        assert first.cycles == second.cycles
        for name in first.outputs:
            assert np.array_equal(first.outputs[name], second.outputs[name])
