"""Occupancy calculator tests against known CUDA-occupancy cases."""

import pytest

from repro.arch.presets import GEFORCE_GTX_480, HD_RADEON_7970, QUADRO_FX_5600
from repro.errors import LaunchError
from repro.isa.sass.parser import assemble_sass
from repro.isa.si.parser import assemble_si
from repro.sim.launch import LaunchConfig
from repro.sim.occupancy import (
    block_footprint,
    max_resident_blocks,
    theoretical_occupancy,
)


def sass_program(regs=16, smem=0):
    return assemble_sass(f".kernel k\n.regs {regs}\n.smem {smem}\nEXIT\n")


def launch(program, block=(256,)):
    return LaunchConfig(program=program, grid=(64,), block=block)


class TestFootprint:
    def test_warp_rounding(self):
        program = sass_program(regs=10)
        fp = block_footprint(GEFORCE_GTX_480, program, launch(program, (100,)))
        assert fp.warps == 4  # ceil(100/32)
        assert fp.threads == 100

    def test_register_allocation_granularity(self):
        # G80 allocates register words in 256-word units per warp.
        program = sass_program(regs=10)
        fp = block_footprint(QUADRO_FX_5600, program, launch(program, (32,)))
        assert fp.reg_words_per_warp == 512  # 10*32=320 -> round to 512

    def test_lmem_granularity(self):
        program = sass_program(regs=8, smem=1000)
        fp = block_footprint(QUADRO_FX_5600, program, launch(program, (32,)))
        assert fp.lmem_bytes == 1024  # 512-byte units

    def test_too_many_registers_rejected(self):
        program = sass_program(regs=64)  # Fermi caps at 63
        with pytest.raises(LaunchError, match="regs/thread"):
            block_footprint(GEFORCE_GTX_480, program, launch(program))


class TestResidency:
    def test_block_limit(self):
        program = sass_program(regs=8)
        fp = block_footprint(GEFORCE_GTX_480, program, launch(program, (32,)))
        assert max_resident_blocks(GEFORCE_GTX_480, fp) == 8  # block cap

    def test_thread_limit(self):
        program = sass_program(regs=8)
        fp = block_footprint(GEFORCE_GTX_480, program, launch(program, (512,)))
        # 1536 threads / 512 = 3 blocks.
        assert max_resident_blocks(GEFORCE_GTX_480, fp) == 3

    def test_register_limit(self):
        program = sass_program(regs=32)
        fp = block_footprint(QUADRO_FX_5600, program, launch(program, (256,)))
        # 256 threads * 32 regs = 8192 words = whole G80 file -> 1 block.
        assert max_resident_blocks(QUADRO_FX_5600, fp) == 1

    def test_lmem_limit(self):
        program = sass_program(regs=8, smem=8192)
        fp = block_footprint(QUADRO_FX_5600, program, launch(program, (64,)))
        assert max_resident_blocks(QUADRO_FX_5600, fp) == 2  # 16K/8K

    def test_unsatisfiable_block(self):
        program = sass_program(regs=8, smem=32 * 1024)
        fp = block_footprint(QUADRO_FX_5600, program, launch(program, (64,)))
        with pytest.raises(LaunchError, match="does not fit"):
            max_resident_blocks(QUADRO_FX_5600, fp)

    def test_si_wavefront_footprint(self):
        program = assemble_si(".kernel k\n.vregs 16\n.sregs 16\n.lds 0\ns_endpgm\n")
        config = HD_RADEON_7970
        lc = LaunchConfig(program=program, grid=(64,), block=(256,))
        fp = block_footprint(config, program, lc)
        assert fp.warps == 4  # 256/64 wavefronts
        assert fp.reg_words_per_warp == 1024  # 16 VGPRs x 64 lanes

    def test_theoretical_occupancy_summary(self):
        program = sass_program(regs=16)
        info = theoretical_occupancy(
            GEFORCE_GTX_480, program, launch(program, (256,))
        )
        assert 0 < info["warp_occupancy"] <= 1
        assert 0 < info["register_occupancy"] <= 1
        assert info["resident_blocks"] >= 1
