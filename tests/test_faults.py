"""Fault-plan construction, sampling and application tests."""

import numpy as np
import pytest

from repro.arch.presets import GEFORCE_GTX_480, HD_RADEON_7970
from repro.errors import ConfigError
from repro.sim.faults import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    FaultPlan,
    fault_from_flat,
    sample_faults,
    words_per_core,
)


class TestFaultPlan:
    def test_valid(self):
        plan = FaultPlan(REGISTER_FILE, core=1, word=5, bit=31, cycle=100)
        assert plan.bit == 31

    def test_bad_structure(self):
        with pytest.raises(ConfigError):
            FaultPlan("icache", 0, 0, 0, 0)

    def test_bad_bit(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, 0, 0, 32, 0)

    def test_negative_coordinates(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, -1, 0, 0, 0)

    def test_hashable(self):
        a = FaultPlan(REGISTER_FILE, 0, 1, 2, 3)
        b = FaultPlan(REGISTER_FILE, 0, 1, 2, 3)
        assert a == b and hash(a) == hash(b)

    def test_defaults_are_single_transient_bit(self):
        plan = FaultPlan(REGISTER_FILE, 0, 1, 2, 3)
        assert plan.width == 1
        assert plan.stuck_value == -1
        assert not plan.is_persistent
        assert plan.bit_mask == 1 << 2

    def test_cluster_crossing_word_boundary_rejected(self):
        with pytest.raises(ConfigError, match="word boundary"):
            FaultPlan(REGISTER_FILE, 0, 0, bit=30, cycle=0, width=4)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, 0, 0, 0, 0, width=0)
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, 0, 0, 0, 0, width=33)

    def test_bad_stuck_value_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, 0, 0, 0, 0, stuck_value=2)

    def test_stuck_plan_is_persistent(self):
        assert FaultPlan(REGISTER_FILE, 0, 0, 0, 0, stuck_value=0).is_persistent
        assert FaultPlan(REGISTER_FILE, 0, 0, 0, 0, stuck_value=1).is_persistent

    def test_cluster_mask(self):
        plan = FaultPlan(LOCAL_MEMORY, 0, 0, bit=4, cycle=0, width=3)
        assert plan.bit_mask == 0b111 << 4


class TestFlatMapping:
    def test_words_per_core(self):
        assert words_per_core(GEFORCE_GTX_480, REGISTER_FILE) == 32768
        assert words_per_core(GEFORCE_GTX_480, LOCAL_MEMORY) == 48 * 1024 // 4

    def test_first_bit(self):
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, 0, 10)
        assert (plan.core, plan.word, plan.bit) == (0, 0, 0)

    def test_core_boundary(self):
        per_core_bits = 32768 * 32
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, per_core_bits, 0)
        assert (plan.core, plan.word, plan.bit) == (1, 0, 0)

    def test_last_bit(self):
        total = GEFORCE_GTX_480.register_file_bits
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, total - 1, 0)
        assert plan.core == 14
        assert plan.word == 32767
        assert plan.bit == 31

    def test_out_of_range(self):
        total = GEFORCE_GTX_480.register_file_bits
        with pytest.raises(ConfigError):
            fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, total, 0)

    def test_global_word_is_whole_chip_core_major(self):
        """Regression: global_word once returned the per-core index
        while its docstring promised whole-chip core-major coordinates.
        It must invert fault_from_flat's word arithmetic exactly."""
        per_core = words_per_core(GEFORCE_GTX_480, REGISTER_FILE)
        plan = FaultPlan(REGISTER_FILE, core=3, word=17, bit=5, cycle=0)
        assert plan.global_word(GEFORCE_GTX_480) == 3 * per_core + 17

    def test_global_word_round_trips_flat_index(self):
        for structure in (REGISTER_FILE, LOCAL_MEMORY):
            for flat in (0, 12345, 999_999):
                plan = fault_from_flat(GEFORCE_GTX_480, structure, flat, 0)
                assert plan.global_word(GEFORCE_GTX_480) * 32 + plan.bit \
                    == flat

    def test_global_word_distinguishes_cores(self):
        """Same per-core word on different cores -> different chip words
        (the property the buggy per-core implementation violated)."""
        a = FaultPlan(REGISTER_FILE, core=0, word=7, bit=0, cycle=0)
        b = FaultPlan(REGISTER_FILE, core=1, word=7, bit=0, cycle=0)
        assert a.global_word(GEFORCE_GTX_480) != b.global_word(GEFORCE_GTX_480)


class TestSampling:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(0)
        plans = sample_faults(HD_RADEON_7970, LOCAL_MEMORY, 10_000, 500, rng)
        assert len(plans) == 500
        for plan in plans:
            assert 0 <= plan.core < 32
            assert 0 <= plan.word < 64 * 1024 // 4
            assert 0 <= plan.cycle < 10_000

    def test_deterministic_by_seed(self):
        first = sample_faults(
            GEFORCE_GTX_480, REGISTER_FILE, 1000, 50, np.random.default_rng(42)
        )
        second = sample_faults(
            GEFORCE_GTX_480, REGISTER_FILE, 1000, 50, np.random.default_rng(42)
        )
        assert first == second

    def test_zero_cycles_rejected(self):
        with pytest.raises(ConfigError):
            sample_faults(GEFORCE_GTX_480, REGISTER_FILE, 0, 10,
                          np.random.default_rng(0))

    def test_roughly_uniform_over_cores(self):
        rng = np.random.default_rng(1)
        plans = sample_faults(GEFORCE_GTX_480, REGISTER_FILE, 100, 3000, rng)
        counts = np.bincount([p.core for p in plans], minlength=15)
        assert counts.min() > 100  # expected 200 per core
