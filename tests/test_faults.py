"""Fault-plan construction, sampling and application tests."""

import numpy as np
import pytest

from repro.arch.presets import GEFORCE_GTX_480, HD_RADEON_7970
from repro.errors import ConfigError
from repro.sim.faults import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    FaultPlan,
    fault_from_flat,
    sample_faults,
    words_per_core,
)


class TestFaultPlan:
    def test_valid(self):
        plan = FaultPlan(REGISTER_FILE, core=1, word=5, bit=31, cycle=100)
        assert plan.bit == 31

    def test_bad_structure(self):
        with pytest.raises(ConfigError):
            FaultPlan("icache", 0, 0, 0, 0)

    def test_bad_bit(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, 0, 0, 32, 0)

    def test_negative_coordinates(self):
        with pytest.raises(ConfigError):
            FaultPlan(REGISTER_FILE, -1, 0, 0, 0)

    def test_hashable(self):
        a = FaultPlan(REGISTER_FILE, 0, 1, 2, 3)
        b = FaultPlan(REGISTER_FILE, 0, 1, 2, 3)
        assert a == b and hash(a) == hash(b)


class TestFlatMapping:
    def test_words_per_core(self):
        assert words_per_core(GEFORCE_GTX_480, REGISTER_FILE) == 32768
        assert words_per_core(GEFORCE_GTX_480, LOCAL_MEMORY) == 48 * 1024 // 4

    def test_first_bit(self):
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, 0, 10)
        assert (plan.core, plan.word, plan.bit) == (0, 0, 0)

    def test_core_boundary(self):
        per_core_bits = 32768 * 32
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, per_core_bits, 0)
        assert (plan.core, plan.word, plan.bit) == (1, 0, 0)

    def test_last_bit(self):
        total = GEFORCE_GTX_480.register_file_bits
        plan = fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, total - 1, 0)
        assert plan.core == 14
        assert plan.word == 32767
        assert plan.bit == 31

    def test_out_of_range(self):
        total = GEFORCE_GTX_480.register_file_bits
        with pytest.raises(ConfigError):
            fault_from_flat(GEFORCE_GTX_480, REGISTER_FILE, total, 0)


class TestSampling:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(0)
        plans = sample_faults(HD_RADEON_7970, LOCAL_MEMORY, 10_000, 500, rng)
        assert len(plans) == 500
        for plan in plans:
            assert 0 <= plan.core < 32
            assert 0 <= plan.word < 64 * 1024 // 4
            assert 0 <= plan.cycle < 10_000

    def test_deterministic_by_seed(self):
        first = sample_faults(
            GEFORCE_GTX_480, REGISTER_FILE, 1000, 50, np.random.default_rng(42)
        )
        second = sample_faults(
            GEFORCE_GTX_480, REGISTER_FILE, 1000, 50, np.random.default_rng(42)
        )
        assert first == second

    def test_zero_cycles_rejected(self):
        with pytest.raises(ConfigError):
            sample_faults(GEFORCE_GTX_480, REGISTER_FILE, 0, 10,
                          np.random.default_rng(0))

    def test_roughly_uniform_over_cores(self):
        rng = np.random.default_rng(1)
        plans = sample_faults(GEFORCE_GTX_480, REGISTER_FILE, 100, 3000, rng)
        counts = np.bincount([p.core for p in plans], minlength=15)
        assert counts.min() > 100  # expected 200 per core
