"""The curated top-level API: everything in ``repro.__all__`` resolves.

Examples and downstream users import from ``repro`` directly; a name
that disappears from the package root is an API break this test turns
into a failure with the missing name spelled out.
"""

import ast
from pathlib import Path

import repro

EXAMPLES = Path(repro.__file__).resolve().parents[2] / "examples"


def test_every_public_name_resolves():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing


def test_key_surfaces_are_exported():
    for name in (
        # campaign API
        "CampaignSpec", "run_campaign", "run_sweep", "run_cell",
        "run_matrix", "ResultStore", "cell_fingerprints",
        # distributed campaign service
        "CampaignService", "CampaignWorker", "RemoteBackend",
        "ExecutionBackend", "CoordinatorUnreachable",
        # observability
        "TelemetrySink", "MemoryTelemetrySink", "JsonlTelemetrySink",
        "CallbackTelemetrySink", "TelemetryHub", "load_telemetry",
        "load_telemetry_events", "telemetry_path_for_store",
        # profiling
        "ProfileCollector", "TelemetryTail", "aggregate_profiles",
        "format_profile", "top_cost_centers",
        # access traces
        "TraceSink", "CompositeSink", "EventRecorder", "JsonlTraceSink",
        "read_trace_events",
        # reports
        "format_avf_figure", "format_epf_figure", "write_cells_csv",
    ):
        assert name in repro.__all__, name


def test_examples_use_only_the_public_api():
    """``examples/`` must not deep-import repro submodules."""
    allowed = {"repro"}
    for path in sorted(EXAMPLES.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.split(".")[0] == "repro":
                assert node.module in allowed, \
                    f"{path.name} deep-imports {node.module}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "repro":
                        assert alias.name in allowed, \
                            f"{path.name} deep-imports {alias.name}"
