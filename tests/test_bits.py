"""Unit + property tests for repro.bits."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import bits


class TestWrapping:
    def test_u32_wraps(self):
        assert bits.u32(2 ** 32) == 0
        assert bits.u32(-1) == 0xFFFFFFFF
        assert bits.u32(5) == 5

    def test_to_signed(self):
        assert bits.to_signed(0xFFFFFFFF) == -1
        assert bits.to_signed(0x80000000) == -(2 ** 31)
        assert bits.to_signed(0x7FFFFFFF) == 2 ** 31 - 1

    def test_from_signed(self):
        assert bits.from_signed(-1) == 0xFFFFFFFF
        assert bits.from_signed(123) == 123

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_signed_roundtrip(self, value):
        assert bits.to_signed(bits.from_signed(value)) == value


class TestFloatBits:
    def test_known_patterns(self):
        assert bits.float_to_bits(1.0) == 0x3F800000
        assert bits.float_to_bits(-2.0) == 0xC0000000
        assert bits.float_to_bits(0.0) == 0
        assert bits.bits_to_float(0x3F800000) == 1.0

    @given(st.floats(width=32, allow_nan=False))
    def test_roundtrip(self, value):
        assert bits.bits_to_float(bits.float_to_bits(value)) == value

    def test_nan_pattern_preserved(self):
        pattern = 0x7FC00001
        assert math.isnan(bits.bits_to_float(pattern))


class TestFlipBit:
    def test_flip_lsb(self):
        assert bits.flip_bit(0, 0) == 1
        assert bits.flip_bit(1, 0) == 0

    def test_flip_msb(self):
        assert bits.flip_bit(0, 31) == 0x80000000

    def test_double_flip_is_identity(self):
        for bit in (0, 7, 31):
            assert bits.flip_bit(bits.flip_bit(0xDEADBEEF, bit), bit) == 0xDEADBEEF

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF),
           st.integers(min_value=0, max_value=31))
    def test_flip_changes_exactly_one_bit(self, word, bit):
        flipped = bits.flip_bit(word, bit)
        assert bits.popcount(word ^ flipped) == 1

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            bits.flip_bit(0, 32)
        with pytest.raises(ValueError):
            bits.flip_bit(0, -1)


class TestMasks:
    def test_mask_lanes(self):
        assert bits.mask_lanes(0) == 0
        assert bits.mask_lanes(1) == 1
        assert bits.mask_lanes(32) == 0xFFFFFFFF
        assert bits.mask_lanes(64) == (1 << 64) - 1

    def test_mask_lanes_negative(self):
        with pytest.raises(ValueError):
            bits.mask_lanes(-1)

    def test_lanes_of(self):
        assert bits.lanes_of(0b1011) == [0, 1, 3]
        assert bits.lanes_of(0) == []

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_lanes_of_popcount(self, mask):
        assert len(bits.lanes_of(mask)) == bits.popcount(mask)

    @given(st.integers(min_value=0, max_value=64))
    def test_mask_lanes_roundtrip(self, n):
        assert bits.lanes_of(bits.mask_lanes(n)) == list(range(n))


class TestWordSerialisation:
    def test_words_to_bytes_roundtrip(self):
        words = np.array([0, 1, 0xDEADBEEF, 0xFFFFFFFF], dtype=np.uint32)
        assert np.array_equal(bits.bytes_to_words(bits.words_to_bytes(words)), words)

    def test_bytes_to_words_pads(self):
        out = bits.bytes_to_words(b"\x01\x02\x03")
        assert out.size == 1
        assert out[0] == 0x00030201

    def test_f32(self):
        assert bits.f32(0.1) == np.float32(0.1)
