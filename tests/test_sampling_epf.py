"""Statistical sampling and FIT/EIT/EPF metric tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.presets import GEFORCE_GTX_480, HD_RADEON_7970
from repro.errors import ConfigError
from repro.reliability.epf import (
    RAW_FIT_PER_BIT,
    compute_epf,
    execution_time_s,
    executions_in_time,
    structure_fit,
)
from repro.reliability.sampling import margin_of_error, required_samples, z_score
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE


class TestSamplingFormula:
    def test_paper_footnote_2000_samples(self):
        """Footnote 4: 2,000 injections -> 2.88% margin at 99% confidence."""
        assert margin_of_error(2000, confidence=0.99) == pytest.approx(
            0.0288, abs=2e-4
        )

    def test_required_samples_roundtrip(self):
        n = required_samples(0.0288, confidence=0.99)
        assert 1990 <= n <= 2010

    def test_finite_population_reduces_margin(self):
        infinite = margin_of_error(1000)
        finite = margin_of_error(1000, population=2000)
        assert finite < infinite

    def test_full_population_zero_margin(self):
        assert margin_of_error(500, population=500) == pytest.approx(0.0)

    def test_oversampling_rejected(self):
        with pytest.raises(ConfigError):
            margin_of_error(100, population=50)

    def test_z_score_values(self):
        assert z_score(0.95) == pytest.approx(1.9600, abs=1e-3)
        assert z_score(0.99) == pytest.approx(2.5758, abs=1e-3)

    def test_bad_confidence(self):
        with pytest.raises(ConfigError):
            z_score(1.5)

    def test_bad_margin(self):
        with pytest.raises(ConfigError):
            required_samples(0.0)

    @given(st.integers(min_value=10, max_value=100_000))
    def test_margin_decreases_with_samples(self, n):
        assert margin_of_error(n + 10) < margin_of_error(n)

    @given(st.floats(min_value=0.005, max_value=0.2),
           st.sampled_from([0.9, 0.95, 0.99]))
    def test_roundtrip_property(self, margin, confidence):
        n = required_samples(margin, confidence=confidence)
        achieved = margin_of_error(n, confidence=confidence)
        assert achieved <= margin * 1.001


class TestFitEpf:
    def test_execution_time(self):
        # 1.401 GHz, 1401 cycles -> 1 microsecond.
        assert execution_time_s(GEFORCE_GTX_480, 1401) == pytest.approx(1e-6)

    def test_eit(self):
        eit = executions_in_time(GEFORCE_GTX_480, 1401)
        assert eit == pytest.approx(3.6e12 / 1e-6, rel=1e-6)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ConfigError):
            executions_in_time(GEFORCE_GTX_480, 0)

    def test_structure_fit_scales_with_avf(self):
        half = structure_fit(GEFORCE_GTX_480, REGISTER_FILE, 0.5)
        full = structure_fit(GEFORCE_GTX_480, REGISTER_FILE, 1.0)
        assert half == pytest.approx(full / 2)
        assert full == pytest.approx(
            RAW_FIT_PER_BIT * GEFORCE_GTX_480.register_file_bits
        )

    def test_bad_avf_rejected(self):
        with pytest.raises(ConfigError):
            structure_fit(GEFORCE_GTX_480, REGISTER_FILE, 1.5)

    def test_compute_epf_combines_structures(self):
        result = compute_epf(
            GEFORCE_GTX_480, "matrixMul", cycles=10_000,
            avf_by_structure={REGISTER_FILE: 0.1, LOCAL_MEMORY: 0.05},
        )
        assert result.fit_gpu == pytest.approx(
            sum(result.fit_by_structure.values())
        )
        assert result.epf == pytest.approx(result.eit / result.fit_gpu)
        assert result.gpu == GEFORCE_GTX_480.name

    def test_epf_zero_avf_is_infinite(self):
        result = compute_epf(
            GEFORCE_GTX_480, "x", cycles=1000,
            avf_by_structure={REGISTER_FILE: 0.0},
        )
        assert math.isinf(result.epf)

    def test_epf_in_paper_ballpark(self):
        """AVF ~10% and microsecond kernels land within 10^12..10^17."""
        for config in (GEFORCE_GTX_480, HD_RADEON_7970):
            result = compute_epf(
                config, "x", cycles=50_000,
                avf_by_structure={REGISTER_FILE: 0.10, LOCAL_MEMORY: 0.05},
            )
            assert 1e11 < result.epf < 1e18

    def test_raw_rate_inverse_on_epf(self):
        low = compute_epf(GEFORCE_GTX_480, "x", 1000,
                          {REGISTER_FILE: 0.1}, raw_fit_per_bit=1e-4)
        high = compute_epf(GEFORCE_GTX_480, "x", 1000,
                           {REGISTER_FILE: 0.1}, raw_fit_per_bit=1e-3)
        assert low.epf == pytest.approx(high.epf * 10)

    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_eit_monotonic_in_cycles(self, cycles):
        fast = executions_in_time(GEFORCE_GTX_480, cycles)
        slow = executions_in_time(GEFORCE_GTX_480, cycles + 1)
        assert slow < fast
