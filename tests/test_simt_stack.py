"""SIMT reconvergence stack unit + property tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.simt_stack import NO_RECONV, SimtStack

FULL = 0xFFFFFFFF


class TestBasics:
    def test_initial_state(self):
        stack = SimtStack(FULL)
        assert stack.pc == 0
        assert stack.active_mask == FULL
        assert stack.depth == 1
        assert not stack.empty

    def test_advance(self):
        stack = SimtStack(FULL)
        stack.advance(5)
        assert stack.pc == 5
        assert stack.depth == 1

    def test_uniform_taken_branch(self):
        stack = SimtStack(FULL)
        stack.branch(FULL, target=10, fallthrough=1, reconv=20)
        assert stack.pc == 10
        assert stack.depth == 1

    def test_uniform_not_taken(self):
        stack = SimtStack(FULL)
        stack.branch(0, target=10, fallthrough=1, reconv=20)
        assert stack.pc == 1
        assert stack.depth == 1


class TestDivergence:
    def test_divergent_branch_executes_taken_first(self):
        stack = SimtStack(FULL)
        stack.branch(0xFFFF, target=10, fallthrough=1, reconv=20)
        assert stack.depth == 3
        assert stack.pc == 10
        assert stack.active_mask == 0xFFFF

    def test_reconvergence_restores_mask(self):
        stack = SimtStack(FULL)
        stack.branch(0xFFFF, target=10, fallthrough=1, reconv=20)
        stack.advance(20)          # taken side reaches reconv -> pop
        assert stack.pc == 1       # else side
        assert stack.active_mask == FULL & ~0xFFFF
        stack.advance(20)          # else side reaches reconv -> pop
        assert stack.pc == 20
        assert stack.active_mask == FULL
        assert stack.depth == 1

    def test_no_reconv_branch_splits_without_reconv_entry(self):
        stack = SimtStack(FULL)
        stack.branch(0xF, target=10, fallthrough=1, reconv=NO_RECONV)
        assert stack.depth == 2
        assert stack.pc == 10
        stack.exit_lanes(0xF)
        assert stack.pc == 1
        assert stack.active_mask == FULL & ~0xF

    def test_exit_lanes_removes_from_all_entries(self):
        stack = SimtStack(FULL)
        stack.branch(0xFF, target=10, fallthrough=1, reconv=20)
        stack.exit_lanes(0x0F)
        assert stack.active_mask == 0xF0
        stack.advance(20)
        stack.advance(20)
        assert stack.active_mask == FULL & ~0x0F

    def test_all_lanes_exit_empties_stack(self):
        stack = SimtStack(FULL)
        stack.exit_lanes(FULL)
        assert stack.empty

    def test_nested_divergence(self):
        stack = SimtStack(FULL)
        stack.branch(0xFFFF, target=10, fallthrough=1, reconv=30)
        stack.advance(11)
        stack.branch(0xF, target=15, fallthrough=12, reconv=25)
        assert stack.depth == 5
        assert stack.pc == 15 and stack.active_mask == 0xF
        stack.advance(25)  # inner taken reconverges
        assert stack.pc == 12 and stack.active_mask == 0xFFF0
        stack.advance(25)  # inner else reconverges
        assert stack.pc == 25 and stack.active_mask == 0xFFFF
        stack.advance(30)  # outer taken reconverges
        assert stack.pc == 1 and stack.active_mask == FULL & ~0xFFFF


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=FULL),
        st.integers(min_value=0, max_value=FULL),
    )
    def test_branch_partitions_active_mask(self, active, taken_raw):
        stack = SimtStack(active)
        taken = taken_raw & active
        stack.branch(taken, target=10, fallthrough=1, reconv=20)
        union = 0
        for entry in stack.entries:
            if entry.pc != 20 or stack.depth == 1:
                union |= entry.mask
        # Union of all live entries covers the original active mask.
        total = 0
        for entry in stack.entries:
            total |= entry.mask
        assert total == active

    @given(st.integers(min_value=1, max_value=FULL),
           st.integers(min_value=0, max_value=FULL))
    def test_exit_lanes_monotonic(self, active, exiting):
        stack = SimtStack(active)
        stack.exit_lanes(exiting)
        for entry in stack.entries:
            assert entry.mask & exiting == 0
