"""Global memory model tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, MemoryFault
from repro.sim.memory import GlobalMemory


class TestAllocation:
    def test_alloc_returns_aligned_base(self):
        mem = GlobalMemory()
        a = mem.alloc("a", 100 * 4)
        b = mem.alloc("b", 16)
        assert a.base % 256 == 0 or a.base == 0x1000
        assert b.base >= a.end
        assert b.base % 256 == 0

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory()
        mem.alloc("a", 16)
        with pytest.raises(ConfigError, match="already allocated"):
            mem.alloc("a", 16)

    def test_bad_size_rejected(self):
        mem = GlobalMemory()
        with pytest.raises(ConfigError):
            mem.alloc("a", 0)
        with pytest.raises(ConfigError):
            mem.alloc("b", 6)

    def test_exhaustion(self):
        mem = GlobalMemory(capacity_bytes=8192)
        with pytest.raises(ConfigError, match="exhausted"):
            mem.alloc("big", 1 << 20)

    def test_alloc_from_preserves_data(self):
        mem = GlobalMemory()
        data = np.array([1.5, -2.5], dtype=np.float32)
        buffer = mem.alloc_from("f", data)
        assert np.array_equal(mem.read_host(buffer, np.float32), data)


class TestDeviceAccess:
    def test_load_store_roundtrip(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 64)
        addrs = buffer.base + np.arange(16) * 4
        mem.store_words(addrs, np.arange(16, dtype=np.uint32))
        assert np.array_equal(mem.load_words(addrs), np.arange(16, dtype=np.uint32))

    def test_unallocated_load_faults(self):
        mem = GlobalMemory()
        mem.alloc("a", 64)
        with pytest.raises(MemoryFault):
            mem.load_words(np.array([0x10]))  # below base

    def test_past_end_faults(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 64)
        with pytest.raises(MemoryFault):
            mem.load_words(np.array([buffer.end]))

    def test_misaligned_faults(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 64)
        with pytest.raises(MemoryFault, match="misaligned"):
            mem.load_words(np.array([buffer.base + 2]))

    def test_fault_reports_address(self):
        mem = GlobalMemory()
        mem.alloc("a", 64)
        try:
            mem.store_words(np.array([4]), np.array([1], dtype=np.uint32))
        except MemoryFault as fault:
            assert fault.address == 4
        else:
            pytest.fail("expected MemoryFault")

    def test_atomic_add_serialises(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 4)
        addrs = np.full(8, buffer.base, dtype=np.int64)
        old = mem.atomic_add(addrs, np.ones(8, dtype=np.uint32))
        assert sorted(old.tolist()) == list(range(8))
        assert mem.load_words(np.array([buffer.base]))[0] == 8

    def test_atomic_wraps(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 4)
        mem.store_words(np.array([buffer.base]), np.array([0xFFFFFFFF], dtype=np.uint32))
        mem.atomic_add(np.array([buffer.base]), np.array([2], dtype=np.uint32))
        assert mem.load_words(np.array([buffer.base]))[0] == 1

    def test_segments_touched(self):
        mem = GlobalMemory()
        coalesced = np.arange(32) * 4 + 0x1000
        assert mem.segments_touched(coalesced) == 1
        scattered = np.arange(32) * 256 + 0x1000
        assert mem.segments_touched(scattered) == 32
        assert mem.segments_touched(np.array([], dtype=np.int64)) == 0

    def test_snapshot(self):
        mem = GlobalMemory()
        mem.alloc_from("x", np.array([7], dtype=np.uint32))
        mem.alloc_from("y", np.array([8, 9], dtype=np.uint32))
        snap = mem.snapshot(["y"])
        assert list(snap) == ["y"]
        assert snap["y"].tolist() == [8, 9]

    def test_write_host_bounds(self):
        mem = GlobalMemory()
        buffer = mem.alloc("a", 8)
        with pytest.raises(ConfigError, match="larger than buffer"):
            mem.write_host(buffer, np.zeros(10, dtype=np.uint32))
