"""CLI argument validation: friendly errors instead of deep tracebacks."""

import pytest

from repro.experiments.runner import main


class TestNumericValidation:
    @pytest.mark.parametrize("argv,needle", [
        (["fig1", "--samples", "0"], "--samples"),
        (["fig1", "--samples", "-3"], "--samples"),
        (["fig1", "--seed", "-1"], "--seed"),
        (["fig1", "--workers", "0"], "--workers"),
        (["fig1", "--shard-size", "0"], "--shard-size"),
        (["fig1", "--checkpoint-interval", "0"], "--checkpoint-interval"),
        (["fig1", "--checkpoint-interval", "-5"], "--checkpoint-interval"),
    ])
    def test_bad_value_exits_2_with_message(self, argv, needle, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle in err
        assert "Traceback" not in err

    def test_no_checkpoints_conflicts_with_interval(self, capsys):
        assert main(["fig1", "--no-checkpoints",
                     "--checkpoint-interval", "100"]) == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_unknown_gpu_is_friendly(self, capsys):
        assert main(["fig1", "--gpus", "nosuchchip"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestStructuresFlag:
    def test_unknown_structure_is_friendly(self, capsys):
        assert main(["fig1", "--structures", "l2_cache"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "l2_cache" in err and "simt_stack" in err
        assert "Traceback" not in err

    def test_empty_structures_is_friendly(self, capsys):
        assert main(["fig1", "--structures", ","]) == 2
        err = capsys.readouterr().err
        assert "--structures" in err

    def test_list_structures(self, capsys):
        assert main(["--list-structures"]) == 0
        out = capsys.readouterr().out
        for name in ("register_file", "local_memory", "simt_stack",
                     "predicate_file", "scheduler_state"):
            assert name in out

    def test_tiny_control_campaign_runs(self, capsys, tmp_path):
        argv = ["control_avf", "--samples", "4", "--scale", "tiny",
                "--gpus", "gtx480",
                "--structures", "simt_stack,predicate_file,scheduler_state",
                "--workloads", "vectoradd",
                "--out", str(tmp_path / "control.csv")]
        assert main(argv) == 0
        assert (tmp_path / "control.csv").exists()
        out = capsys.readouterr().out
        assert "simt_stack" in out


class TestHappyPaths:
    def test_listings_exit_zero(self, capsys):
        assert main(["--list-fault-models"]) == 0
        out = capsys.readouterr().out
        assert "transient" in out and "stuck_at" in out and "mbu" in out
        assert main(["--list-gpus"]) == 0
        assert main(["--list-workloads"]) == 0

    def test_missing_experiment_exits_2(self, capsys):
        assert main([]) == 2
        assert "experiment" in capsys.readouterr().err

    def test_tiny_checkpointed_campaign_runs(self, capsys, tmp_path):
        argv = ["fig1", "--samples", "4", "--scale", "tiny",
                "--gpus", "gtx480", "--workloads", "vectoradd",
                "--checkpoint-interval", "200",
                "--out", str(tmp_path / "fig1.csv")]
        assert main(argv) == 0
        assert (tmp_path / "fig1.csv").exists()
