"""The hot-path profiling layer: collector, report, tail, transparency.

Three contracts under test. (1) The ProfileCollector's exclusive-time
stack accounting: nested phases suspend their parent, so per-phase
seconds partition the instrumented wall time and report shares sum to
100%. (2) The tailing/loading tolerance: a partially-written final
JSONL line (torn JSON or torn UTF-8) is buffered or skipped-and-
counted, never raised. (3) Observability-only-ness, same CI-gated
guarantee as telemetry: stores produced with profiling on and off are
bit-identical, no fingerprint includes the setting, and a pre-profiling
store resumes with zero executed jobs.
"""

import json
from pathlib import Path

import pytest

from repro.engine.matrix import cell_fingerprints, run_campaign
from repro.engine.scheduler import clear_memory_cache
from repro.errors import ConfigError
from repro.spec import CampaignSpec
from repro.spec.sweep import run_sweep
from repro.telemetry import (
    MemoryTelemetrySink,
    PHASES,
    ProfileCollector,
    TelemetryHub,
    TelemetryTail,
    aggregate_profiles,
    format_profile,
    load_telemetry,
    load_telemetry_events,
    merge_profiles,
    top_cost_centers,
)
from repro.telemetry import profile as profile_mod

FIXTURES = Path(__file__).resolve().parent / "fixtures"
FIXTURE_STORE = FIXTURES / "status_store.jsonl"

TINY = CampaignSpec(gpus=("gtx480",), workloads=("vectoradd",),
                    scale="tiny", samples=4)


@pytest.fixture
def fake_clock(monkeypatch):
    """Replace the collector's clock with one that ticks 1s per read."""
    ticks = iter(float(i) for i in range(10_000))
    monkeypatch.setattr(profile_mod, "perf_counter", lambda: next(ticks))


class TestCollector:
    def test_nested_phases_account_exclusive_time(self, fake_clock):
        collector = ProfileCollector()
        with collector.phase("golden"):        # enter @0
            with collector.phase("digest"):    # enter @1: golden += 1
                pass                           # exit @2: digest += 1
            pass                               # exit @3: golden += 1
        assert collector.phases == {"golden": 2.0, "digest": 1.0}
        assert collector.phase_calls == {"golden": 1, "digest": 1}

    def test_sibling_phases_partition_time(self, fake_clock):
        collector = ProfileCollector()
        with collector.phase("restore"):       # 0 -> 1
            pass
        with collector.phase("suffix_sim"):    # 2 -> 3
            pass
        assert collector.phases == {"restore": 1.0, "suffix_sim": 1.0}

    def test_dispatch_counts_per_isa_and_memory(self):
        collector = ProfileCollector()
        collector.dispatch("sass", "alu", False)
        collector.dispatch("sass", "mem", True)
        collector.dispatch("si", "alu", False)
        assert collector.dispatch_counts == {
            "sass": {"alu": 1, "mem": 1}, "si": {"alu": 1}}
        assert collector.counters["warp_issues"] == 3
        assert collector.counters["memory_ops"] == 1

    def test_as_dict_is_json_safe_snapshot(self):
        collector = ProfileCollector()
        collector.count("checkpoint_hit")
        data = collector.as_dict()
        json.dumps(data)
        collector.count("checkpoint_hit")
        assert data["counters"]["checkpoint_hit"] == 1  # snapshot, not view


class TestModuleHooks:
    def test_inactive_phase_is_shared_noop(self):
        assert profile_mod.ACTIVE is None
        scope = profile_mod.phase("golden")
        assert scope is profile_mod.phase("restore")
        with scope:
            pass
        profile_mod.count("anything")  # must not raise

    def test_collecting_activates_and_restores(self):
        outer, inner = ProfileCollector(), ProfileCollector()
        assert profile_mod.ACTIVE is None
        with profile_mod.collecting(outer):
            assert profile_mod.ACTIVE is outer
            with profile_mod.collecting(inner):
                assert profile_mod.ACTIVE is inner
                profile_mod.count("hit")
            assert profile_mod.ACTIVE is outer
        assert profile_mod.ACTIVE is None
        assert inner.counters == {"hit": 1}
        assert outer.counters == {}

    def test_collecting_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profile_mod.collecting(ProfileCollector()):
                raise RuntimeError("boom")
        assert profile_mod.ACTIVE is None


class TestMerge:
    def test_none_sides(self):
        assert merge_profiles(None, None) is None
        data = ProfileCollector().as_dict()
        assert merge_profiles(data, None) is data
        assert merge_profiles(None, data) == data

    def test_sums_all_sections_without_mutating_source(self):
        a = {"phases": {"golden": 1.0}, "phase_calls": {"golden": 1},
             "dispatch": {"sass": {"alu": 2}}, "counters": {"hits": 1}}
        b = {"phases": {"golden": 0.5, "digest": 0.25},
             "phase_calls": {"golden": 2, "digest": 1},
             "dispatch": {"sass": {"alu": 1, "mem": 3}, "si": {"alu": 5}},
             "counters": {"hits": 2, "misses": 4}}
        b_copy = json.loads(json.dumps(b))
        merged = merge_profiles(a, b)
        assert merged["phases"] == {"golden": 1.5, "digest": 0.25}
        assert merged["phase_calls"] == {"golden": 3, "digest": 1}
        assert merged["dispatch"] == {"sass": {"alu": 3, "mem": 3},
                                      "si": {"alu": 5}}
        assert merged["counters"] == {"hits": 3, "misses": 4}
        assert b == b_copy


def _cell_event(workload, profile, fault_model="transient",
                structures=("register_file",)):
    return {"event": "cell_profile", "workload": workload,
            "fault_model": fault_model, "structures": list(structures),
            "profile": profile}


class TestReport:
    def test_total_prefers_campaign_summaries(self):
        cell = {"phases": {"golden": 1.0}, "phase_calls": {"golden": 1},
                "dispatch": {}, "counters": {}}
        summary = {"phases": {"golden": 9.0}, "phase_calls": {"golden": 9},
                   "dispatch": {}, "counters": {}}
        agg = aggregate_profiles([
            _cell_event("vectoradd", cell),
            {"event": "campaign_profile", "profile": summary},
        ])
        assert agg["total"]["phases"] == {"golden": 9.0}
        assert agg["cells"] == 1 and agg["campaigns"] == 1

    def test_total_falls_back_to_cell_sum(self):
        cell = {"phases": {"golden": 1.0}, "phase_calls": {"golden": 1},
                "dispatch": {}, "counters": {}}
        agg = aggregate_profiles([_cell_event("vectoradd", cell),
                                  _cell_event("histogram", cell)])
        assert agg["total"]["phases"] == {"golden": 2.0}
        assert set(agg["groups"]) == {
            "vectoradd x transient x register_file",
            "histogram x transient x register_file"}

    def test_top_cost_centers_orders_and_limits(self):
        groups = {
            "a": {"phases": {"golden": 3.0, "digest": 0.1}},
            "b": {"phases": {"suffix_sim": 2.0}},
        }
        centers = top_cost_centers(groups, limit=2)
        assert centers == [(3.0, "a", "golden"), (2.0, "b", "suffix_sim")]

    def test_format_no_events_hints_at_flag(self):
        panel = format_profile("store.jsonl", aggregate_profiles([]))
        assert "no profile events recorded" in panel
        assert "--profile" in panel

    def test_format_full_panel(self):
        profile = {
            "phases": {"golden": 3.0, "suffix_sim": 1.0},
            "phase_calls": {"golden": 1, "suffix_sim": 4},
            "dispatch": {"sass": {"alu": 10, "mem": 2}},
            "counters": {"warp_issues": 12, "memory_ops": 2},
        }
        agg = aggregate_profiles([
            _cell_event("vectoradd", profile),
            {"event": "campaign_profile", "profile": profile},
        ])
        panel = format_profile("store.jsonl", agg, work_s=4.2)
        assert "phase breakdown" in panel
        assert "75.0%" in panel and "25.0%" in panel
        assert "100.0%" in panel  # the total row
        assert "coverage: 4.000s attributed of 4.200s" in panel
        assert "sass" in panel and "warp_issues" in panel
        assert "top cost centers" in panel
        assert "vectoradd x transient x register_file :: golden" in panel

    def test_phase_rows_follow_canonical_order(self):
        profile = {"phases": {name: 1.0 for name in reversed(PHASES)},
                   "phase_calls": {}, "dispatch": {}, "counters": {}}
        panel = format_profile("s", aggregate_profiles(
            [{"event": "campaign_profile", "profile": profile}]))
        positions = [panel.index(name) for name in PHASES]
        assert positions == sorted(positions)


class TestTail:
    def test_missing_file_polls_empty(self, tmp_path):
        tail = TelemetryTail(tmp_path / "nope.jsonl")
        assert tail.poll() == []
        assert tail.poll() == []

    def test_partial_line_waits_for_newline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tail = TelemetryTail(path)
        path.write_text('{"event": "a"}\n{"event": "b"')
        assert [e["event"] for e in tail.poll()] == ["a"]
        with path.open("a") as handle:
            handle.write(', "x": 1}\n')
        assert [e["event"] for e in tail.poll()] == ["b"]
        assert tail.skipped == 0

    def test_torn_utf8_line_is_skipped_not_raised(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"event": "\xc3"}\n{"event": "ok"}\n')
        tail = TelemetryTail(path)
        assert [e["event"] for e in tail.poll()] == ["ok"]
        assert tail.skipped == 1

    def test_garbage_and_non_event_lines_count_as_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not json\n[1, 2]\n{"no_event": 1}\n'
                        '{"event": "ok"}\n')
        tail = TelemetryTail(path)
        assert [e["event"] for e in tail.poll()] == ["ok"]
        assert tail.skipped == 3

    def test_truncation_restarts_from_top(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}\n')
        tail = TelemetryTail(path)
        assert len(tail.poll()) == 2
        path.write_text('{"event": "fresh"}\n')
        assert [e["event"] for e in tail.poll()] == ["fresh"]


class TestLoader:
    def test_load_telemetry_events_counts_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"event": "a"}\ngarbage\n'
                         b'{"event": "\xc3"}\n{"event": "b"}\n'
                         b'{"event": "torn')
        events, skipped = load_telemetry_events(path)
        assert [e["event"] for e in events] == ["a", "b"]
        assert skipped == 3
        assert [e["event"] for e in load_telemetry(path)] == ["a", "b"]


def _semantic_records(path):
    """Store records with wall-time measurement fields stripped."""
    def clean(value):
        if isinstance(value, dict):
            return {k: clean(v) for k, v in value.items()
                    if not k.endswith("_time_s")}
        if isinstance(value, list):
            return [clean(item) for item in value]
        return value

    return [clean(json.loads(line))
            for line in path.read_text().splitlines() if line.strip()]


class TestEngineIntegration:
    def test_campaign_emits_profile_events(self):
        clear_memory_cache()
        mem = MemoryTelemetrySink()
        run_campaign(TINY, telemetry=TelemetryHub(mem), profile=True)
        cell_events = mem.of_type("cell_profile")
        assert len(cell_events) == 1
        event = cell_events[0]
        assert "GTX 480" in event["gpu"]
        assert event["workload"] == "vectoradd"
        assert "register_file" in event["structures"]
        profile = event["profile"]
        assert set(profile["phases"]) <= set(PHASES)
        assert profile["phases"]["golden"] > 0
        assert profile["counters"]["warp_issues"] > 0
        assert "sass" in profile["dispatch"]

    def test_campaign_summary_covers_cell_work(self):
        clear_memory_cache()
        mem = MemoryTelemetrySink()
        run_campaign(TINY, telemetry=TelemetryHub(mem), profile=True)
        summary = mem.of_type("campaign_profile")
        assert len(summary) == 1
        event = summary[0]
        assert event["cells"] == 1
        attributed = sum(event["profile"]["phases"].values())
        # The phase timers must attribute the bulk of the cell work the
        # campaign itself accounted (golden_time_s + fi_time_s).
        assert event["work_s"] > 0
        assert attributed > 0.5 * event["work_s"]
        assert attributed < 1.5 * event["work_s"]

    def test_profile_off_emits_no_profile_events(self):
        clear_memory_cache()
        mem = MemoryTelemetrySink()
        run_campaign(TINY, telemetry=TelemetryHub(mem))
        assert not mem.of_type("cell_profile")
        assert not mem.of_type("campaign_profile")

    def test_sweep_profiles_every_child(self):
        clear_memory_cache()
        mem = MemoryTelemetrySink()
        run_sweep(TINY, {"seed": [0, 1]},
                  telemetry=TelemetryHub(mem), profile=True)
        assert len(mem.of_type("campaign_profile")) == 2
        assert len(mem.of_type("cell_profile")) == 2

    def test_profile_true_without_store_is_config_error(self):
        with pytest.raises(ConfigError, match="profil"):
            run_campaign(TINY, profile=True)


class TestObservabilityOnly:
    def test_store_parity_on_vs_off(self, tmp_path):
        on, off = tmp_path / "on.jsonl", tmp_path / "off.jsonl"
        spec = TINY.replace(workloads=("vectoradd", "histogram"))
        clear_memory_cache()
        run_campaign(spec, store=str(on), profile=True)
        clear_memory_cache()
        run_campaign(spec, store=str(off), profile=False)
        assert _semantic_records(on) == _semantic_records(off)
        assert '"_profile"' not in on.read_text()

    def test_profile_joins_no_fingerprint(self):
        assert cell_fingerprints(TINY) == \
            cell_fingerprints(TINY.replace(profile=True))

    def test_profile_on_store_resumes_with_zero_executed(self, tmp_path):
        store = tmp_path / "store.jsonl"
        clear_memory_cache()
        run_campaign(TINY, store=str(store))
        clear_memory_cache()
        result = run_campaign(TINY.replace(profile=True), store=str(store))
        assert result.stats.executed == 0

    def test_pre_profiling_fixture_store_resumes_zero_executed(
            self, tmp_path):
        # The checked-in fixture store was recorded before the
        # profiling layer existed; profiling on must replay it fully
        # cached — the proof no fingerprint or payload changed.
        spec = CampaignSpec(gpus=("gtx480",),
                            workloads=("vectoradd", "histogram"),
                            scale="small", samples=8, seed=0,
                            structures=("register_file",))
        store = tmp_path / "status_store.jsonl"
        store.write_text(FIXTURE_STORE.read_text())
        clear_memory_cache()
        result = run_campaign(spec.replace(profile=True), store=str(store))
        assert result.stats.executed == 0


class TestSpecField:
    def test_validation(self):
        TINY.replace(profile=True)
        TINY.replace(profile=False)
        with pytest.raises(ConfigError, match="profile"):
            TINY.replace(profile=3)
        with pytest.raises(ConfigError, match="profile"):
            TINY.replace(profile="yes")

    def test_serialization_round_trip(self, tmp_path):
        spec = TINY.replace(profile=True)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "spec.toml"
        spec.to_file(path)
        assert CampaignSpec.from_file(path).profile is True

    def test_set_override_parses_booleans(self):
        from repro.experiments.runner import _scalar_value
        assert _scalar_value("profile", "true") is True
        assert _scalar_value("profile", "off") is False
        with pytest.raises(ConfigError, match="profile"):
            _scalar_value("profile", "maybe")
