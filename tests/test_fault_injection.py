"""End-to-end fault-injection behaviour: flips propagate, crash, or mask.

Includes the pruning-exactness property — the core validation of the
GUFI-style acceleration: every fault the resolver prunes as dead must,
when actually re-simulated, produce bit-identical outputs.
"""

import numpy as np
import pytest

from repro.errors import SimFault, WatchdogTimeout
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.fi import run_golden, run_fi_campaign
from repro.reliability.liveness import FaultSiteResolver
from repro.reliability.outcomes import Outcome, classify_outputs
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan, sample_faults
from repro.sim.gpu import Gpu
from repro.sim.tracing import EventRecorder
from tests.conftest import MINI_NVIDIA, run_sass

COPY_KERNEL = """
.kernel copy
.regs 8
.smem 0
    S2R R0, SR_TID_X
    SHL R1, R0, 2
    IADD R2, R1, c[0]
    LDG R3, [R2]
    NOP
    NOP
    NOP
    IADD R4, R1, c[1]
    STG [R4], R3
    EXIT
"""


def _trace_r3_row(data):
    """Find the register row and cycles where R3 of warp 0 lives."""
    recorder = EventRecorder()
    gpu, snap = run_sass(COPY_KERNEL, {"in": data, "out": data.size * 4},
                         ["in", "out"], sink=recorder)
    return recorder, snap


class TestDirectedInjection:
    def test_flip_in_live_register_corrupts_output(self):
        # Values start at 100 so a zeroed output word is never a false
        # match for the expected data.
        data = np.arange(100, 132, dtype=np.uint32)
        recorder, golden = _trace_r3_row(data)
        # R3 is written by the LDG (a read of the in buffer, then a reg
        # write); find a register row written then read again (the STG
        # source read), and flip a bit between the two events.
        writes = [e for e in recorder.reg_events if e[4]]
        reads = [e for e in recorder.reg_events if not e[4]]
        target = None
        for wcycle, wcore, wrow, wmask, _ in writes:
            later = [r for r in reads if r[2] == wrow and r[0] > wcycle]
            if later:
                target = (wcore, wrow, wcycle, later[0][0])
                break
        assert target is not None
        core, row, wcycle, rcycle = target
        plan = FaultPlan(REGISTER_FILE, core, row * 32, 0, wcycle + 1)
        gpu, snap = run_sass(COPY_KERNEL, {"in": data, "out": data.size * 4},
                             ["in", "out"], faults=[plan])
        assert not np.array_equal(snap["out"], golden["out"])

    def test_flip_after_last_read_is_masked(self):
        data = np.arange(32, dtype=np.uint32)
        recorder, golden = _trace_r3_row(data)
        last_cycle = max(e[0] for e in recorder.reg_events)
        plan = FaultPlan(REGISTER_FILE, 0, 0, 0, last_cycle + 1000)
        gpu, snap = run_sass(COPY_KERNEL, {"in": data, "out": data.size * 4},
                             ["in", "out"], faults=[plan])
        assert np.array_equal(snap["out"], golden["out"])

    def test_flip_in_unallocated_register_is_masked(self):
        data = np.arange(32, dtype=np.uint32)
        _, golden = _trace_r3_row(data)
        # The mini chip has 64 rows; the copy kernel's single warp uses
        # the first 8. Row 50 is never allocated.
        plan = FaultPlan(REGISTER_FILE, 0, 50 * 32 + 5, 17, 3)
        gpu, snap = run_sass(COPY_KERNEL, {"in": data, "out": data.size * 4},
                             ["in", "out"], faults=[plan])
        assert np.array_equal(snap["out"], golden["out"])

    def test_address_register_flip_can_crash(self):
        """A high bit flipped in an address register produces a DUE."""
        data = np.arange(32, dtype=np.uint32)
        recorder, _ = _trace_r3_row(data)
        # Flip a high bit of every plausible row/cycle until one faults.
        crashed = False
        writes = [e for e in recorder.reg_events if e[4]]
        for wcycle, wcore, wrow, _, _ in writes:
            plan = FaultPlan(REGISTER_FILE, wcore, wrow * 32, 30, wcycle + 1)
            try:
                run_sass(COPY_KERNEL, {"in": data, "out": data.size * 4},
                         ["in", "out"], faults=[plan])
            except SimFault:
                crashed = True
                break
        assert crashed

    def test_watchdog_catches_runaway(self):
        source = """
.kernel spin
.regs 8
.smem 0
    MOV R0, RZ
loop:
    IADD R0, R0, 1
    ISETP.LT P0, R0, 100000
@P0 BRA loop
    EXIT
"""
        with pytest.raises(WatchdogTimeout):
            run_sass(source, {"out": 128}, ["out"], watchdog=5_000)


class TestPruningExactness:
    @pytest.mark.parametrize("gpu_alias,workload_name", [
        ("nvidia", "histogram"),
        ("amd", "reduction"),
    ])
    def test_pruned_faults_truly_masked(self, gpu_alias, workload_name):
        """Resimulating resolver-pruned (dead) faults never changes output."""
        from tests.conftest import MINI_AMD
        config = MINI_NVIDIA if gpu_alias == "nvidia" else MINI_AMD
        workload = get_workload(workload_name, "tiny")
        golden = run_golden(config, workload)
        rng = np.random.default_rng(123)
        plans = (
            sample_faults(config, REGISTER_FILE, golden.cycles, 40, rng)
            + sample_faults(config, LOCAL_MEMORY, golden.cycles, 40, rng)
        )
        resolver = FaultSiteResolver(config, plans)
        run_workload(Gpu(config, sink=resolver), workload)
        dead = [p for p in plans if not resolver.is_live(p)]
        assert dead, "expected some prunable faults"
        # Brute-force re-simulate a slice of the dead ones.
        for plan in dead[:15]:
            gpu = Gpu(config)
            gpu.set_faults([plan])
            result = run_workload(gpu, workload)
            assert classify_outputs(golden.outputs, result.outputs) is Outcome.MASKED

    def test_live_faults_include_all_failures(self):
        """Brute-force every sampled fault: failures only among live ones."""
        config = MINI_NVIDIA
        workload = get_workload("scan", "tiny")
        golden = run_golden(config, workload)
        rng = np.random.default_rng(7)
        plans = sample_faults(config, REGISTER_FILE, golden.cycles, 60, rng)
        resolver = FaultSiteResolver(config, plans)
        run_workload(Gpu(config, sink=resolver), workload)
        for plan in plans:
            gpu = Gpu(config)
            gpu.set_faults([plan])
            gpu.set_watchdog(golden.cycles * 4 + 20000)
            try:
                result = run_workload(gpu, workload)
                outcome = classify_outputs(golden.outputs, result.outputs)
            except SimFault:
                outcome = Outcome.DUE
            if outcome is not Outcome.MASKED:
                assert resolver.is_live(plan), (
                    f"failure at pruned site: {plan} -> {outcome}"
                )


class TestCampaignEngine:
    def test_campaign_counts_consistent(self):
        config = MINI_NVIDIA
        workload = get_workload("matrixMul", "tiny")
        golden = run_golden(config, workload)
        output = run_fi_campaign(config, workload, golden, samples=50, seed=3)
        for estimate in output.estimates.values():
            assert estimate.masked + estimate.sdc + estimate.due == estimate.samples
            assert estimate.pruned <= estimate.masked
            assert estimate.resimulated == estimate.samples - estimate.pruned
            assert 0.0 <= estimate.avf <= 1.0

    def test_campaign_deterministic_by_seed(self):
        config = MINI_NVIDIA
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(config, workload)
        a = run_fi_campaign(config, workload, golden, samples=40, seed=11)
        b = run_fi_campaign(config, workload, golden, samples=40, seed=11)
        for structure in a.estimates:
            assert a.estimates[structure].avf == b.estimates[structure].avf
            assert a.estimates[structure].sdc == b.estimates[structure].sdc

    def test_keep_results(self):
        config = MINI_NVIDIA
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(config, workload)
        output = run_fi_campaign(config, workload, golden, samples=20, seed=5,
                                 keep_results=True)
        assert len(output.results) == 40  # 20 per structure
