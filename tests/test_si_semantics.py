"""SI execution semantics, tested by running one-wavefront kernels."""

import numpy as np

from repro.bits import float_to_bits
from tests.conftest import run_si


def run1(body: str, n_out: int = 64, vregs: int = 16, sregs: int = 16,
         lds: int = 0, extra_buffers: dict | None = None,
         params: list | None = None, block=(64,)):
    """Run a 1-wavefront kernel; v15 is stored to out[tid] at the end."""
    source = f"""
.kernel t
.vregs {vregs}
.sregs {sregs}
.lds {lds}
{body}
    v_lshlrev_b32 v14, 2, v0
    s_load_dword s15, param[0]
    v_add_i32 v14, v14, s15
    global_store_dword v14, v15
    s_endpgm
"""
    buffers = {"out": n_out * 4}
    if extra_buffers:
        buffers.update(extra_buffers)
    gpu, snap = run_si(source, buffers, ["out"] + (params or []), block=block)
    return snap["out"]


def lanes(n=64):
    return np.arange(n, dtype=np.uint32)


class TestScalarAlu:
    def test_s_mov_and_broadcast(self):
        out = run1("s_mov_b32 s6, 42\nv_mov_b32 v15, s6")
        assert (out == 42).all()

    def test_s_add_sub_mul(self):
        out = run1("s_mov_b32 s6, 7\ns_add_i32 s6, s6, 5\nv_mov_b32 v15, s6")
        assert (out == 12).all()
        out = run1("s_mov_b32 s6, 7\ns_sub_i32 s6, s6, 9\nv_mov_b32 v15, s6")
        assert (out == 0xFFFFFFFE).all()
        out = run1("s_mov_b32 s6, 7\ns_mul_i32 s6, s6, 6\nv_mov_b32 v15, s6")
        assert (out == 42).all()

    def test_s_shifts(self):
        out = run1("s_mov_b32 s6, 1\ns_lshl_b32 s6, s6, 5\nv_mov_b32 v15, s6")
        assert (out == 32).all()
        out = run1("s_mov_b32 s6, 0x80000000\ns_lshr_b32 s6, s6, 31\nv_mov_b32 v15, s6")
        assert (out == 1).all()
        out = run1("s_mov_b32 s6, 0x80000000\ns_ashr_i32 s6, s6, 31\nv_mov_b32 v15, s6")
        assert (out == 0xFFFFFFFF).all()

    def test_s_minmax(self):
        out = run1("s_mov_b32 s6, -5\ns_min_i32 s6, s6, 3\nv_mov_b32 v15, s6")
        assert (out == 0xFFFFFFFB).all()

    def test_s_logic(self):
        out = run1("s_mov_b32 s6, 0xF0\ns_and_b32 s6, s6, 0x3C\nv_mov_b32 v15, s6")
        assert (out == 0x30).all()

    def test_abi_sgprs(self):
        # s2 = workgroup dim x.
        out = run1("v_mov_b32 v15, s2")
        assert (out == 64).all()

    def test_s_load_dword_param(self):
        out = run1("s_load_dword s6, param[1]\nv_mov_b32 v15, s6",
                   params=[1234])
        assert (out == 1234).all()


class TestVectorAlu:
    def test_v_add_i32(self):
        out = run1("v_mov_b32 v1, 5\nv_add_i32 v15, v0, v1")
        assert np.array_equal(out, lanes() + 5)

    def test_v_sub_i32(self):
        out = run1("v_mov_b32 v1, 100\nv_sub_i32 v15, v1, v0")
        assert np.array_equal(out, 100 - lanes())

    def test_v_mul_lo(self):
        out = run1("v_mul_lo_i32 v15, v0, v0")
        assert np.array_equal(out, lanes() * lanes())

    def test_v_mad(self):
        out = run1("v_mov_b32 v1, 3\nv_mad_i32 v15, v0, v1, v1")
        assert np.array_equal(out, lanes() * 3 + 3)

    def test_reversed_shifts(self):
        out = run1("v_mov_b32 v1, 1\nv_lshlrev_b32 v15, v0, v1")
        assert np.array_equal(out, np.left_shift(np.uint32(1), lanes() & 31))
        out = run1("v_mov_b32 v1, 0x80000000\nv_lshrrev_b32 v15, 31, v1")
        assert (out == 1).all()
        out = run1("v_mov_b32 v1, 0x80000000\nv_ashrrev_i32 v15, 31, v1")
        assert (out == 0xFFFFFFFF).all()

    def test_v_minmax_i32(self):
        out = run1("v_mov_b32 v1, -2\nv_min_i32 v15, v0, v1")
        assert (out == 0xFFFFFFFE).all()
        out = run1("v_mov_b32 v1, 31\nv_max_i32 v15, v0, v1").view(np.int32)
        assert np.array_equal(out, np.maximum(lanes().astype(np.int32), 31))

    def test_float_ops(self):
        out = run1("v_mov_b32 v1, 1.5\nv_mov_b32 v2, 2.0\nv_add_f32 v15, v1, v2")
        assert (out.view(np.float32) == 3.5).all()
        out = run1("v_mov_b32 v1, 1.5\nv_mov_b32 v2, 2.0\nv_mul_f32 v15, v1, v2")
        assert (out.view(np.float32) == 3.0).all()
        out = run1("v_mov_b32 v1, 5.0\nv_mov_b32 v2, 2.0\nv_sub_f32 v15, v1, v2")
        assert (out.view(np.float32) == 3.0).all()

    def test_v_mac_accumulates(self):
        out = run1(
            "v_mov_b32 v15, 1.0\nv_mov_b32 v1, 2.0\nv_mov_b32 v2, 3.0\n"
            "v_mac_f32 v15, v1, v2"
        )
        assert (out.view(np.float32) == 7.0).all()

    def test_v_fma(self):
        out = run1(
            "v_mov_b32 v1, 2.0\nv_mov_b32 v2, 3.0\nv_mov_b32 v3, 10.0\n"
            "v_fma_f32 v15, v1, v2, v3"
        )
        assert (out.view(np.float32) == 16.0).all()

    def test_unary_float(self):
        out = run1("v_mov_b32 v1, 4.0\nv_rcp_f32 v15, v1")
        assert (out.view(np.float32) == 0.25).all()
        out = run1("v_mov_b32 v1, 9.0\nv_sqrt_f32 v15, v1")
        assert (out.view(np.float32) == 3.0).all()
        out = run1("v_mov_b32 v1, 3.0\nv_exp_f32 v15, v1")
        assert (out.view(np.float32) == 8.0).all()

    def test_conversions(self):
        out = run1("v_cvt_f32_i32 v15, v0")
        assert np.array_equal(out.view(np.float32), lanes().astype(np.float32))
        out = run1("v_mov_b32 v1, -2.7\nv_cvt_i32_f32 v15, v1").view(np.int32)
        assert (out == -2).all()


class TestMasksAndCndmask:
    def test_v_cmp_writes_vcc(self):
        out = run1(
            "v_mov_b32 v1, 32\nv_cmp_lt_i32 vcc, v0, v1\n"
            "v_mov_b32 v2, 7\nv_mov_b32 v3, 9\nv_cndmask_b32 v15, v2, v3, vcc"
        )
        assert (out[:32] == 9).all() and (out[32:] == 7).all()

    def test_v_cmp_to_sreg_pair(self):
        out = run1(
            "v_mov_b32 v1, 16\nv_cmp_ge_u32 s[8:9], v0, v1\n"
            "v_mov_b32 v2, 1\nv_mov_b32 v3, 2\nv_cndmask_b32 v15, v2, v3, s[8:9]"
        )
        assert (out[:16] == 1).all() and (out[16:] == 2).all()

    def test_v_cmp_f32(self):
        out = run1(
            "v_cvt_f32_i32 v1, v0\nv_mov_b32 v2, 31.5\n"
            "v_cmp_gt_f32 vcc, v1, v2\n"
            "v_mov_b32 v3, 0\nv_mov_b32 v4, 1\nv_cndmask_b32 v15, v3, v4, vcc"
        )
        assert out.sum() == 32  # lanes 32..63

    def test_saveexec_divergence(self):
        out = run1(
            "v_mov_b32 v15, 100\n"
            "v_mov_b32 v1, 10\n"
            "v_cmp_lt_i32 vcc, v0, v1\n"
            "s_and_saveexec_b64 s[8:9], vcc\n"
            "s_cbranch_execz skip\n"
            "v_mov_b32 v15, 200\n"
            "skip:\n"
            "s_mov_b64 exec, s[8:9]"
        )
        assert (out[:10] == 200).all() and (out[10:] == 100).all()

    def test_execz_branch_taken_when_empty(self):
        out = run1(
            "v_mov_b32 v15, 1\n"
            "v_mov_b32 v1, 100\n"
            "v_cmp_gt_i32 vcc, v0, v1\n"       # no lane: tid > 100
            "s_and_saveexec_b64 s[8:9], vcc\n"
            "s_cbranch_execz skip\n"
            "v_mov_b32 v15, 2\n"
            "skip:\n"
            "s_mov_b64 exec, s[8:9]"
        )
        assert (out == 1).all()

    def test_mask_logic_64(self):
        out = run1(
            "s_mov_b64 s[8:9], 0xFF\n"
            "s_not_b64 s[10:11], s[8:9]\n"
            "s_and_b64 s[8:9], s[10:11], exec\n"
            "v_mov_b32 v1, 5\nv_mov_b32 v2, 6\n"
            "v_cndmask_b32 v15, v1, v2, s[8:9]"
        )
        assert (out[:8] == 5).all() and (out[8:] == 6).all()

    def test_scalar_loop(self):
        out = run1(
            "s_mov_b32 s6, 0\ns_mov_b32 s7, 0\n"
            "loop:\n"
            "s_add_i32 s6, s6, 3\ns_add_i32 s7, s7, 1\n"
            "s_cmp_lt_i32 s7, 4\ns_cbranch_scc1 loop\n"
            "v_mov_b32 v15, s6"
        )
        assert (out == 12).all()


class TestSiMemory:
    def test_global_roundtrip(self):
        data = np.arange(200, 264, dtype=np.uint32)
        out = run1(
            "v_lshlrev_b32 v1, 2, v0\ns_load_dword s6, param[1]\n"
            "v_add_i32 v1, v1, s6\nglobal_load_dword v15, v1",
            extra_buffers={"in": data}, params=["in"],
        )
        assert np.array_equal(out, data)

    def test_global_offset(self):
        data = np.arange(128, dtype=np.uint32)
        out = run1(
            "v_lshlrev_b32 v1, 2, v0\ns_load_dword s6, param[1]\n"
            "v_add_i32 v1, v1, s6\nglobal_load_dword v15, v1, 16",
            extra_buffers={"in": data}, params=["in"],
        )
        assert np.array_equal(out, data[4:68])

    def test_lds_roundtrip(self):
        out = run1(
            "v_lshlrev_b32 v1, 2, v0\nv_mul_lo_i32 v2, v0, 7\n"
            "ds_write_b32 v1, v2\nds_read_b32 v15, v1",
            lds=512,
        )
        assert np.array_equal(out, lanes() * 7)

    def test_lds_offset_write_read(self):
        out = run1(
            "v_lshlrev_b32 v1, 2, v0\nv_mov_b32 v2, 11\n"
            "ds_write_b32 v1, v2, 256\nds_read_b32 v15, v1, 256",
            lds=1024,
        )
        assert (out == 11).all()

    def test_ds_add_atomic(self):
        out = run1(
            "v_mov_b32 v1, 0\nv_mov_b32 v2, 1\n"
            "ds_add_u32 v1, v2\ns_barrier\nds_read_b32 v15, v1",
            lds=128,
        )
        assert (out == 64).all()

    def test_global_atomic_add(self):
        out = run1(
            "s_load_dword s6, param[1]\nv_mov_b32 v1, s6\nv_mov_b32 v2, 1\n"
            "global_atomic_add v15, v1, v2",
            extra_buffers={"acc": 4}, params=["acc"],
        )
        assert sorted(out.tolist()) == list(range(64))

    def test_partial_wavefront(self):
        out = run1("v_mov_b32 v15, 9", block=(40,))
        assert (out[:40] == 9).all() and (out[40:] == 0).all()
