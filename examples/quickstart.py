"""Quickstart: run one benchmark on a simulated GPU and measure its AVF.

This walks the whole public API in ~40 lines:

1. pick a chip (the paper's GeForce GTX 480, scaled preset),
2. run the matrixMul benchmark fault-free and validate its outputs,
3. run one combined reliability cell (fault injection + ACE analysis +
   occupancy + EPF) and print the numbers the paper's figures plot.

Run:  python examples/quickstart.py
"""

from repro import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    CampaignSpec,
    Gpu,
    get_scaled_gpu,
    get_workload,
    run_cell,
    run_workload,
    verify_against_reference,
)


def main() -> None:
    config = get_scaled_gpu("gtx480")
    print(f"Chip: {config.describe()}")

    # --- 1. plain simulation --------------------------------------------
    workload = get_workload("matrixMul", scale="small")
    result = run_workload(Gpu(config), workload)
    problems = verify_against_reference(workload, result.outputs)
    print(f"\nmatrixMul: {result.cycles} cycles "
          f"({result.cycles / config.shader_clock_hz * 1e6:.1f} us simulated)")
    print(f"functional check vs numpy reference: "
          f"{'PASS' if not problems else problems}")

    # --- 2. reliability cell --------------------------------------------
    # Campaigns are described by one declarative spec object; the same
    # spec could be saved with spec.to_file("quickstart.toml") and run
    # via `repro-experiments run quickstart.toml`.
    print("\nRunning FI + ACE campaign (200 injections/structure)...")
    spec = CampaignSpec(gpus=("gtx480",), workloads=("matrixMul",),
                        scale="small", samples=200, seed=0)
    cell = run_cell(spec)
    for structure in (REGISTER_FILE, LOCAL_MEMORY):
        estimate = cell.fi[structure]
        print(f"  {structure:<14} AVF-FI={estimate.avf:6.3f} "
              f"(+/-{estimate.margin:.3f} @99%)  "
              f"AVF-ACE={cell.ace[structure]:6.3f}  "
              f"occupancy={cell.occupancy[structure]:6.3f}  "
              f"[SDC={estimate.sdc} DUE={estimate.due} "
              f"pruned={estimate.pruned}/{estimate.samples}]")
    print(f"\n  EPF = {cell.epf.epf:.3e} executions per failure "
          f"(FIT_GPU = {cell.epf.fit_gpu:.1f})")


if __name__ == "__main__":
    main()
