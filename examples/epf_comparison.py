"""EPF comparison: the paper's Fig. 3 combined reliability-performance
metric across all four chips on one benchmark.

EPF = EIT / FIT ranks chips differently than AVF alone: a chip with a
bigger (hence more fault-prone) register file can still win on EPF by
finishing executions faster. Run on vectoradd for a quick demo.

Run:  python examples/epf_comparison.py
"""

from repro import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    CampaignSpec,
    format_epf_figure,
    run_matrix,
)

BENCHMARK = "vectoradd"


def main() -> None:
    # gpus left unset = all four scaled chips, in figure order.
    spec = CampaignSpec(workloads=(BENCHMARK,), scale="small",
                        samples=150, seed=0)
    cells = run_matrix(
        spec,
        progress=lambda cell: print(f"done {cell.gpu}", flush=True),
    )

    print()
    print(format_epf_figure(cells, f"EPF on {BENCHMARK} (mini Fig. 3)"))

    print("ingredients:")
    for cell in cells:
        epf = cell.epf
        print(f"  {cell.gpu:<26} t_exec={epf.t_exec_s * 1e6:8.2f}us  "
              f"EIT={epf.eit:.2e}  "
              f"FIT(rf)={epf.fit_by_structure[REGISTER_FILE]:8.1f}  "
              f"FIT(lm)={epf.fit_by_structure[LOCAL_MEMORY]:8.1f}  "
              f"EPF={epf.epf:.2e}")

    best = max(cells, key=lambda c: c.epf.epf)
    print(f"\nmost executions per failure: {best.gpu}")


if __name__ == "__main__":
    main()
