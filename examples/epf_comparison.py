"""EPF comparison: the paper's Fig. 3 combined reliability-performance
metric across all four chips on one benchmark.

EPF = EIT / FIT ranks chips differently than AVF alone: a chip with a
bigger (hence more fault-prone) register file can still win on EPF by
finishing executions faster. Run on vectoradd for a quick demo.

Run:  python examples/epf_comparison.py
"""

from repro import LOCAL_MEMORY, REGISTER_FILE, list_scaled_gpus, run_cell
from repro.reliability.report import format_epf_figure

BENCHMARK = "vectoradd"


def main() -> None:
    cells = []
    for config in list_scaled_gpus():
        print(f"running {config.name} / {BENCHMARK} ...", flush=True)
        cells.append(
            run_cell(config, BENCHMARK, scale="small", samples=150, seed=0)
        )

    print()
    print(format_epf_figure(cells, f"EPF on {BENCHMARK} (mini Fig. 3)"))

    print("ingredients:")
    for cell in cells:
        epf = cell.epf
        print(f"  {cell.gpu:<26} t_exec={epf.t_exec_s * 1e6:8.2f}us  "
              f"EIT={epf.eit:.2e}  "
              f"FIT(rf)={epf.fit_by_structure[REGISTER_FILE]:8.1f}  "
              f"FIT(lm)={epf.fit_by_structure[LOCAL_MEMORY]:8.1f}  "
              f"EPF={epf.epf:.2e}")

    best = max(cells, key=lambda c: c.epf.epf)
    print(f"\nmost executions per failure: {best.gpu}")


if __name__ == "__main__":
    main()
