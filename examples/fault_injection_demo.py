"""Anatomy of one fault injection: flip a single register bit and watch.

Chooses a live fault site in vectoradd's register file by tracing the
golden run, then re-simulates with the flip applied and diffs the
output — the exact procedure the FI campaign automates thousands of
times. Also demonstrates a DUE: a flipped high bit in an address
register crashes the simulated chip.

Run:  python examples/fault_injection_demo.py
"""

import numpy as np

from repro import (
    REGISTER_FILE,
    EventRecorder,
    FaultPlan,
    Gpu,
    SimFault,
    get_scaled_gpu,
    get_workload,
    run_workload,
)


def main() -> None:
    config = get_scaled_gpu("fx5600")
    workload = get_workload("vectoradd", scale="tiny")

    # Golden run with an event recorder to find live register rows.
    recorder = EventRecorder()
    golden = run_workload(Gpu(config, sink=recorder), workload)
    print(f"golden run: {golden.cycles} cycles")

    # Pick a register row that is written and then read again.
    writes = [e for e in recorder.reg_events if e[4]]
    reads = [e for e in recorder.reg_events if not e[4]]
    site = None
    for wcycle, wcore, wrow, _, _ in writes:
        if any(r[1] == wcore and r[2] == wrow and r[0] > wcycle for r in reads):
            site = (wcore, wrow, wcycle)
            break
    assert site is not None
    core, row, cycle = site

    # SDC: flip bit 12 of lane 0 of that row right after the write.
    plan = FaultPlan(REGISTER_FILE, core, row * config.warp_size, 12, cycle + 1)
    print(f"\ninjecting {plan}")
    gpu = Gpu(config)
    gpu.set_faults([plan])
    faulty = run_workload(gpu, workload)
    diff = np.flatnonzero(faulty.outputs["c"] != golden.outputs["c"])
    if diff.size:
        index = int(diff[0])
        want = golden.outputs["c"].view(np.float32)[index]
        got = faulty.outputs["c"].view(np.float32)[index]
        print(f"SDC: c[{index}] = {got!r}, expected {want!r} "
              f"({diff.size} corrupted words)")
    else:
        print("masked: output identical (fault was logically masked)")

    # DUE: flip a high bit in each live row until an address breaks.
    print("\nhunting for a DUE (address-register corruption)...")
    for wcycle, wcore, wrow, _, _ in writes[:40]:
        plan = FaultPlan(REGISTER_FILE, wcore, wrow * config.warp_size, 30,
                         wcycle + 1)
        gpu = Gpu(config)
        gpu.set_faults([plan])
        try:
            run_workload(gpu, workload)
        except SimFault as fault:
            print(f"DUE: {type(fault).__name__}: {fault}")
            print(f"     (from {plan})")
            break
    else:
        print("no crash found in the first 40 sites (all SDC/masked)")


if __name__ == "__main__":
    main()
