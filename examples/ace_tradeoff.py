"""ACE vs FI: the accuracy / analysis-time trade-off the paper closes on.

Times both methodologies on the same (chip, benchmark) cell and prints
the accuracy gap per structure. Expected outcome (paper, section III):
ACE costs one traced simulation but overestimates the register file's
AVF; fault injection is accurate but costs hundreds of re-simulations;
for local memory ACE is nearly as accurate as FI — so ACE is the right
tool there.

Run:  python examples/ace_tradeoff.py
"""

import time

from repro import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    get_scaled_gpu,
    get_workload,
    run_fi_campaign,
    run_golden,
)

GPU = "fx5800"
BENCHMARK = "transpose"
SAMPLES = 200


def main() -> None:
    config = get_scaled_gpu(GPU)
    workload = get_workload(BENCHMARK, scale="small")

    start = time.perf_counter()
    golden = run_golden(config, workload)
    ace_time = time.perf_counter() - start

    start = time.perf_counter()
    campaign = run_fi_campaign(config, workload, golden, samples=SAMPLES, seed=0)
    fi_time = time.perf_counter() - start

    print(f"{config.name} / {BENCHMARK} (n={SAMPLES}/structure)\n")
    print(f"ACE analysis : {ace_time:6.1f}s  (one traced golden run)")
    print(f"FI campaign  : {fi_time:6.1f}s  "
          f"({sum(e.resimulated for e in campaign.estimates.values())} re-simulations, "
          f"{sum(e.pruned for e in campaign.estimates.values())} pruned)\n")
    print(f"{'structure':<16} {'AVF-FI':>8} {'AVF-ACE':>8} {'ACE/FI':>8}")
    for structure in (REGISTER_FILE, LOCAL_MEMORY):
        fi = campaign.estimates[structure].avf
        ace = golden.ace.avf(structure)
        ratio = ace / fi if fi else float("inf")
        print(f"{structure:<16} {fi:8.3f} {ace:8.3f} {ratio:8.2f}")
    print(
        "\nReading: the register file's ACE/FI ratio exceeds 1 (lifetime "
        "analysis cannot see logical masking), while local memory's sits "
        "near 1 — so ACE can replace FI there at a fraction of the cost."
    )


if __name__ == "__main__":
    main()
