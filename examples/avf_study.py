"""Mini AVF study: the paper's Fig. 1/Fig. 2 on a 2-chip, 3-benchmark slice.

Compares one chip per vendor (HD Radeon 7970 vs GeForce GTX 480) on
three benchmarks, printing the register-file and local-memory AVF by
both methodologies plus occupancy — a < 2-minute version of the
full `repro-experiments fig1`/`fig2` campaigns.

Run:  python examples/avf_study.py
"""

from repro import (
    LOCAL_MEMORY,
    REGISTER_FILE,
    CampaignSpec,
    format_avf_figure,
    run_matrix,
)

GPUS = ("hd7970", "gtx480")
BENCHMARKS = ("matrixMul", "reduction", "histogram")


def main() -> None:
    # One declarative spec covers the whole 2x3 slice; run_matrix
    # shares golden runs and reports cells in matrix order.
    spec = CampaignSpec(gpus=GPUS, workloads=BENCHMARKS,
                        scale="small", samples=150, seed=0)
    cells = run_matrix(
        spec,
        progress=lambda cell: print(
            f"done {cell.gpu} / {cell.workload}", flush=True),
    )

    print()
    print(format_avf_figure(cells, REGISTER_FILE,
                            "Register File AVF (mini Fig. 1)"))
    print()
    print(format_avf_figure(cells, LOCAL_MEMORY,
                            "Local Memory AVF (mini Fig. 2)"))

    print("\nKey observations to compare with the paper:")
    for cell in cells:
        rf_fi = cell.avf_fi(REGISTER_FILE)
        rf_ace = cell.avf_ace(REGISTER_FILE)
        lm_fi = cell.avf_fi(LOCAL_MEMORY)
        lm_ace = cell.avf_ace(LOCAL_MEMORY)
        print(f"  {cell.gpu:<26} {cell.workload:<10} "
              f"regfile ACE/FI={rf_ace / rf_fi if rf_fi else float('inf'):5.2f}  "
              f"localmem ACE/FI={lm_ace / lm_fi if lm_fi else float('inf'):5.2f}")


if __name__ == "__main__":
    main()
